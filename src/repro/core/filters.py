"""Node-path predicates and filter push-down (paper Section 4.3.1).

Each tree node carries the conjunction of edge conditions on its path
from the root (``S`` in the paper).  When a batch of nodes
``n_1..n_k`` is serviced by a server scan, the middleware generates the
disjunction ``S_1 OR ... OR S_k`` and pushes it into the cursor's WHERE
clause, so only rows relevant to *some* node in the batch are
transmitted — avoiding the record tagging of SLIQ/SPRINT.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from ..common.errors import MiddlewareError
from ..sqlengine.expr import TRUE, all_of, any_of, eq, ne

#: The two edge-condition operators produced by tree splits.
CONDITION_OPS = ("=", "<>")


class PathCondition:
    """One edge condition: ``attribute = value`` or ``attribute <> value``.

    Binary splits produce ``=`` on the chosen branch and ``<>`` on the
    "other" branch; complete (multiway) splits produce ``=`` only.
    """

    __slots__ = ("attribute", "op", "value")

    def __init__(self, attribute: str, op: str, value: object):
        if op not in CONDITION_OPS:
            raise MiddlewareError(f"unsupported edge condition op: {op!r}")
        self.attribute = attribute
        self.op = op
        self.value = value

    def to_expr(self) -> Any:
        """The condition as a SQL engine expression."""
        if self.op == "=":
            return eq(self.attribute, self.value)
        return ne(self.attribute, self.value)

    def matches(self, value: object) -> bool:
        """Evaluate the condition against a concrete attribute value."""
        if self.op == "=":
            return value == self.value
        return value != self.value

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PathCondition)
            and (self.attribute, self.op, self.value)
            == (other.attribute, other.op, other.value)
        )

    def __hash__(self) -> int:
        return hash((self.attribute, self.op, self.value))

    def __repr__(self) -> str:
        return f"PathCondition({self.attribute} {self.op} {self.value})"


def path_predicate(conditions: Iterable[PathCondition]) -> Any:
    """AND of a node's path conditions (TRUE for the root)."""
    return all_of([condition.to_expr() for condition in conditions])


class RoutingKernel:
    """Attribute-indexed row routing for one batched scan.

    The per-row matcher loop evaluates every node's path conjunction
    against every record — O(nodes × conditions) closure calls per row.
    This kernel compiles the batch once into per-attribute dispatch
    tables: each node occupies one bit of a candidate mask, and each
    attribute that appears in *any* node's path maps the attribute's
    row value to the mask of nodes still viable given that value.
    Routing a row is then one dict probe per constrained attribute
    (O(tree depth)), intersecting masks and stopping early when no
    candidate survives.

    The mask construction handles the full condition algebra the tree
    clients emit: repeated ``<>`` conditions on one attribute (the
    "other" branch of successive binary splits on the same attribute),
    an ``=`` combined with ``<>`` on the same attribute, and nodes with
    no condition on a probed attribute (always viable there).
    """

    __slots__ = ("_probes", "_full_mask", "n_slots")

    def __init__(self, condition_sets: Iterable[Sequence[PathCondition]],
                 attr_index: Mapping[str, int]):
        """Compile the kernel.

        :param condition_sets: one sequence of :class:`PathCondition`
            per routing slot (node), in slot order.
        :param attr_index: mapping attribute name -> row tuple index.
        """
        compiled = [tuple(conditions) for conditions in condition_sets]
        self.n_slots = len(compiled)
        self._full_mask = (1 << self.n_slots) - 1

        # Per attribute: slot -> (set of required values, set of
        # excluded values).  A slot with several distinct required
        # values can never match (contradictory path); it simply never
        # enters any mask for that attribute.
        by_attr: dict[str, dict[int, tuple[set[object], set[object]]]] = {}
        for slot, conditions in enumerate(compiled):
            for condition in conditions:
                eq_values, ne_values = by_attr.setdefault(
                    condition.attribute, {}
                ).setdefault(slot, (set(), set()))
                if condition.op == "=":
                    eq_values.add(condition.value)
                else:
                    ne_values.add(condition.value)

        probes = []
        for attribute, constrained in by_attr.items():
            interesting: set[object] = set()
            for eq_values, ne_values in constrained.values():
                interesting |= eq_values
                interesting |= ne_values
            # Slots unconstrained on this attribute are viable for
            # every value; slots with only exclusions are additionally
            # viable for any value outside their exclusion set — in
            # particular for every value not in ``interesting``.
            default = 0
            for slot in range(self.n_slots):
                pair = constrained.get(slot)
                if pair is None or not pair[0]:
                    default |= 1 << slot
            table: dict[object, int] = {}
            for value in interesting:
                mask = 0
                for slot in range(self.n_slots):
                    pair = constrained.get(slot)
                    if pair is None:
                        mask |= 1 << slot
                        continue
                    eq_values, ne_values = pair
                    if eq_values and eq_values != {value}:
                        continue
                    if value in ne_values:
                        continue
                    mask |= 1 << slot
                table[value] = mask
            probes.append((attr_index[attribute], table, default))
        self._probes = tuple(probes)

    @property
    def n_probes(self) -> int:
        """Dispatch tables consulted per row (≤ distinct path attrs)."""
        return len(self._probes)

    @property
    def probes(self) -> tuple[tuple[int, dict[object, int], int], ...]:
        """The compiled dispatch tables: ``(row_index, table, default)``.

        Exposed for the vectorized kernel, which evaluates each probe
        column-at-a-time instead of row-at-a-time.
        """
        return self._probes

    @property
    def full_mask(self) -> int:
        """Mask with every slot's bit set (the routing starting point)."""
        return self._full_mask

    def route(self, row: Sequence[Any]) -> int:
        """Mask of slots whose path conjunction matches ``row``."""
        mask = self._full_mask
        for index, table, default in self._probes:
            mask &= table.get(row[index], default)
            if not mask:
                return 0
        return mask


def batch_filter(predicates: Iterable[Any]) -> Any | None:
    """The pushed-down disjunction ``S_1 OR ... OR S_k``.

    Returns ``None`` (no WHERE clause) when any predicate is TRUE —
    pushing ``... OR (1=1)`` would be pointless.
    """
    predicates = list(predicates)
    if not predicates:
        raise MiddlewareError("cannot build a filter for an empty batch")
    if any(p is TRUE or p == TRUE for p in predicates):
        return None
    return any_of(predicates)
