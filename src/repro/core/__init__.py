"""The scalable classification middleware (the paper's contribution)."""

from .auxiliary import (
    KeysetStrategy,
    predicate_covers,
    predicate_disjuncts,
    PlainScanStrategy,
    ServerAccessStrategy,
    TempTableStrategy,
    TIDJoinStrategy,
    make_strategy,
)
from .cc_store import BinaryTreeCCStore, cc_table_via_tree_store
from .cc_table import BYTES_PER_COUNT, PAIR_KEY_BYTES, CCTable, bytes_for_pairs
from .config import AUX_STRATEGIES, MiddlewareConfig
from .estimators import (
    estimate_cc_pairs,
    exact_child_rows_for_other,
    exact_child_rows_for_value,
    root_cc_pairs,
)
from .execution import ExecutionModule, ExecutionStats, ScanStats
from .filters import PathCondition, RoutingKernel, batch_filter, path_predicate
from .middleware import Middleware
from .requests import CountsRequest, CountsResult, RequestQueue
from .scan_pool import ScanWorkerPool
from .scheduler import Schedule, Scheduler
from .sql_counting import CC_COLUMNS, cc_statement, counts_via_sql
from .staging import (
    DataLocation,
    ParallelStagingWriter,
    PipelinedStagingWriter,
    StagedFile,
    StagingManager,
)
from .trace import ExecutionTrace, ScheduleRecord

__all__ = [
    "AUX_STRATEGIES",
    "BYTES_PER_COUNT",
    "BinaryTreeCCStore",
    "cc_table_via_tree_store",
    "CCTable",
    "CC_COLUMNS",
    "CountsRequest",
    "CountsResult",
    "DataLocation",
    "ExecutionModule",
    "ExecutionStats",
    "ExecutionTrace",
    "ScheduleRecord",
    "KeysetStrategy",
    "Middleware",
    "MiddlewareConfig",
    "PAIR_KEY_BYTES",
    "ParallelStagingWriter",
    "PathCondition",
    "PipelinedStagingWriter",
    "PlainScanStrategy",
    "RequestQueue",
    "RoutingKernel",
    "ScanWorkerPool",
    "ScanStats",
    "Schedule",
    "Scheduler",
    "ServerAccessStrategy",
    "StagedFile",
    "StagingManager",
    "TIDJoinStrategy",
    "TempTableStrategy",
    "batch_filter",
    "bytes_for_pairs",
    "cc_statement",
    "counts_via_sql",
    "estimate_cc_pairs",
    "exact_child_rows_for_other",
    "exact_child_rows_for_value",
    "make_strategy",
    "predicate_covers",
    "predicate_disjuncts",
    "path_predicate",
    "root_cc_pairs",
]
