"""The execution module (paper Section 4.1).

Given a :class:`~repro.core.scheduler.Schedule`, builds the CC tables
of every node in the batch in **one scan** of the appropriate data
source, without external sorting: as each record is retrieved, it is
routed to the (unique) active node whose path predicate it satisfies
and the node's counters are updated.

The same scan also performs the staging the scheduler planned: rows
routed to a stage-target node are appended to its new middleware file
and/or collected for middleware memory.

Two scan loops implement the routing:

* the **kernel** loop (default) compiles the batch's path conditions
  into a :class:`~repro.core.filters.RoutingKernel` — one dict probe
  per constrained attribute instead of one closure call per node — and
  processes rows in configurable chunks so staging writes and memory
  capture are flushed in blocks;
* the **per-row** loop is the reference implementation: every node's
  matcher closure is evaluated against every row.  It is kept as the
  equivalence baseline behind ``config.scan_kernel = False``.

When ``config.scan_workers`` > 1 (and the source is large enough),
the kernel loop runs **partitioned**: the row source is cut into
ordered partitions, a worker pool (threads by default, processes via
``config.scan_pool``) routes each partition through the same compiled
kernel into *private* per-node CC partials, and the coordinator merges
the partials into the real CC tables — CC tables are additive count
structures, so partial counts over disjoint partitions merge exactly.
Staged rows funnel through a single
:class:`~repro.core.staging.PipelinedStagingWriter` in partition
order, overlapping block flushes with counting and keeping staged
files bit-identical to a serial scan's.  Memory overflow (below) is
detected on the *merged* sizes in batch order, so recovery decisions
are deterministic for any worker count.

Every scan records profiling counters on :class:`ScanStats` — wall
time, rows/sec, matcher-evaluation counts, which loop ran, worker
count and merge time — which the middleware copies onto the session
trace.

Runtime memory errors are handled as in Section 4.1.1.  When a node's
CC table outgrows what can be reserved there are two recoveries:

* **deferral** — if the node shares the scan with other *surviving*
  nodes, it is simply counted on a *later* scan (the "multiple scans
  of the database ... to build CC tables for active nodes" of Section
  5.2.1B).  Its size estimate is raised to the pair count observed
  before the overflow, so the next admission reserves realistically.
* **SQL fallback** — if the node was scanned alone, or every co-batched
  peer has already been abandoned (so deferring would only buy it an
  identical solo scan), its CC genuinely cannot be accommodated: it
  switches to the SQL-based implementation and its counts are fetched
  from the server after the scan, modelling the paper's lazy
  retrieval: the middleware never holds that table against its budget.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from itertools import islice

from ..common.errors import MiddlewareError
from .cc_table import CCTable
from .filters import RoutingKernel, batch_filter
from .requests import CountsResult
from .scheduler import _cc_tag
from .sql_counting import counts_via_sql
from .staging import DataLocation, PipelinedStagingWriter


@dataclass
class ScanStats:
    """Counters describing one executed scan."""

    mode: DataLocation
    rows_seen: int = 0
    rows_routed: int = 0
    nodes_served: int = 0
    sql_fallbacks: int = 0
    deferrals: int = 0
    files_written: int = 0
    memory_sets_loaded: int = 0
    #: Wall-clock seconds spent producing and routing the scan's rows.
    wall_seconds: float = 0.0
    #: Condition-evaluation work: matcher closure calls in the per-row
    #: loop, dispatch-table probes in the kernel loop.
    matcher_evals: int = 0
    #: True when the compiled routing kernel ran (False = per-row loop).
    kernel: bool = False
    #: Worker tasks that counted this scan (1 = one of the serial loops).
    workers: int = 1
    #: Wall-clock seconds merging per-worker CC partials (parallel only).
    merge_seconds: float = 0.0
    #: Per-partition counting seconds as reported by the workers.
    worker_seconds: list = field(default_factory=list)

    @property
    def rows_per_sec(self):
        """Scan throughput (0.0 when the scan was too fast to time)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.rows_seen / self.wall_seconds


@dataclass
class ExecutionStats:
    """Cumulative counters across a middleware session."""

    scans_by_mode: dict = field(
        default_factory=lambda: {loc: 0 for loc in DataLocation}
    )
    rows_seen: int = 0
    rows_routed: int = 0
    batches: int = 0
    sql_fallbacks: int = 0
    deferrals: int = 0
    files_written: int = 0
    memory_sets_loaded: int = 0
    wall_seconds: float = 0.0
    matcher_evals: int = 0
    kernel_scans: int = 0
    parallel_scans: int = 0
    merge_seconds: float = 0.0

    def absorb(self, scan):
        self.scans_by_mode[scan.mode] += 1
        self.rows_seen += scan.rows_seen
        self.rows_routed += scan.rows_routed
        self.batches += 1
        self.sql_fallbacks += scan.sql_fallbacks
        self.deferrals += scan.deferrals
        self.files_written += scan.files_written
        self.memory_sets_loaded += scan.memory_sets_loaded
        self.wall_seconds += scan.wall_seconds
        self.matcher_evals += scan.matcher_evals
        self.kernel_scans += scan.kernel
        self.parallel_scans += scan.workers > 1
        self.merge_seconds += scan.merge_seconds

    @property
    def total_scans(self):
        return sum(self.scans_by_mode.values())

    @property
    def rows_per_sec(self):
        """Session-wide scan throughput."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.rows_seen / self.wall_seconds


# -- parallel scan workers ---------------------------------------------------
#
# The routing context is installed once per worker (thread or process)
# by the pool initializer rather than shipped with every partition, so
# a process pool pickles the compiled kernel W times, not once per
# partition.  Only one scan runs at a time per middleware process, so a
# module-level slot is safe for thread pools too.

_WORKER_CTX = None


def _init_scan_worker(kernel, slots, class_index, n_classes):
    global _WORKER_CTX
    _WORKER_CTX = (kernel, slots, class_index, n_classes)


def _count_partition(seq, rows, stage_nodes, capture_nodes):
    """Count one row partition against the installed routing context.

    Runs inside a worker.  Returns only additive, order-independent
    state — per-slot CC partials, the routed-row count, and the rows
    destined for each staging target — so the coordinator can merge
    partials in any completion order and apply staging output in
    partition (``seq``) order.  The worker never touches the memory
    budget, the cost meter, or any file: those stay single-threaded.
    """
    kernel, slots, class_index, n_classes = _WORKER_CTX
    started = time.perf_counter()
    partials = [
        CCTable(attributes, n_classes) for _, attributes, _ in slots
    ]
    writes = {node_id: [] for node_id in stage_nodes}
    captures = {node_id: [] for node_id in capture_nodes}
    route = kernel.route
    routed = 0
    for row in rows:
        mask = route(row)
        if not mask:
            continue
        routed += 1
        while mask:
            low_bit = mask & -mask
            mask ^= low_bit
            slot = low_bit.bit_length() - 1
            node_id, _, attr_positions = slots[slot]
            partials[slot].count_row_at(
                row, attr_positions, row[class_index]
            )
            buffer = writes.get(node_id)
            if buffer is not None:
                buffer.append(row)
            buffer = captures.get(node_id)
            if buffer is not None:
                buffer.append(row)
    return seq, partials, routed, writes, captures, \
        time.perf_counter() - started


class _NodeCount:
    """Per-node counting state within one scan."""

    __slots__ = ("request", "cc", "reserved", "fallback", "deferred",
                 "attr_positions")

    def __init__(self, request, cc, reserved, attr_positions):
        self.request = request
        self.cc = cc
        self.reserved = reserved
        self.fallback = False
        self.deferred = False
        #: Precomputed (attribute, row index) pairs for tuple counting.
        self.attr_positions = attr_positions

    @property
    def abandoned(self):
        return self.fallback or self.deferred


class ExecutionModule:
    """Runs schedules: scan-based counting plus staging writes."""

    def __init__(self, server, table_name, spec, staging, budget, config,
                 strategy):
        self._server = server
        self._table_name = table_name
        self._spec = spec
        self._staging = staging
        self._budget = budget
        self._config = config
        self._strategy = strategy
        self._attr_index = {
            name: i for i, name in enumerate(spec.attribute_names)
        }
        self._class_index = spec.n_attributes
        self.stats = ExecutionStats()
        #: The :class:`ScanStats` of the most recent :meth:`run`.
        self.last_scan = None

    def run(self, schedule):
        """Execute one schedule.

        Returns ``(results, deferred)``: the fulfilled
        :class:`CountsResult` list plus any requests pushed to a later
        scan by a runtime memory overflow.
        """
        scan = ScanStats(mode=schedule.mode)
        states = self._make_states(schedule)
        file_writers = self._open_file_writers(schedule)
        memory_capture = {
            node_id: [] for node_id in schedule.stage_memory_targets
        }

        started = time.perf_counter()
        try:
            row_iter = self._rows_for(schedule, scan)
            workers = self._parallel_workers(schedule)
            if workers > 1:
                self._count_rows_parallel(
                    row_iter, states, file_writers, memory_capture, scan,
                    workers, self._partition_rows(schedule, workers),
                )
            elif self._config.scan_kernel:
                self._count_rows_kernel(
                    row_iter, states, file_writers, memory_capture, scan
                )
            else:
                matchers = [
                    (state, self._make_matcher(state.request))
                    for state in states
                ]
                self._count_rows(
                    row_iter, matchers, file_writers, memory_capture, scan
                )
        except Exception:
            for node_id in file_writers:
                self._staging.abandon_file(node_id)
            for node_id in memory_capture:
                self._staging.cancel_memory_reservation(node_id)
            self._release_cc_reservations(states)
            raise
        scan.wall_seconds = time.perf_counter() - started

        for node_id, writer in file_writers.items():
            writer.seal()
            scan.files_written += 1
        for node_id, rows in memory_capture.items():
            self._staging.commit_memory(node_id, rows)
            scan.memory_sets_loaded += 1

        try:
            results, deferred = self._finish(states, schedule, scan)
        finally:
            self._release_cc_reservations(states)
        self.stats.absorb(scan)
        self.last_scan = scan
        return results, deferred

    # -- setup ------------------------------------------------------------

    def _make_states(self, schedule):
        states = []
        for request in schedule.batch:
            cc = CCTable(request.attributes, self._spec.n_classes)
            reserved = schedule.cc_reservations.get(request.node_id, 0)
            positions = tuple(
                (name, self._attr_index[name]) for name in request.attributes
            )
            states.append(_NodeCount(request, cc, reserved, positions))
        return states

    def _make_matcher(self, request):
        """Compile a node's path conditions into a tuple-level check."""
        checks = [
            (self._attr_index[c.attribute], c.op == "=", c.value)
            for c in request.conditions
        ]

        def match(row):
            for index, want_equal, value in checks:
                if (row[index] == value) != want_equal:
                    return False
            return True

        return match

    def _open_file_writers(self, schedule):
        """Writers for planned staging targets and file splits.

        Planned ``stage_file_targets`` were budget-checked by the
        scheduler; §4.3.2 split files are decided here, so the same
        file-space budget is enforced per split target — targets whose
        data would overflow ``file_budget_bytes`` are skipped (their
        nodes are still counted; they just keep reading the source).
        """
        staging = self._staging
        targets = list(schedule.stage_file_targets)
        if schedule.split_file:
            rows_by_node = {r.node_id: r.n_rows for r in schedule.batch}
            planned = sum(rows_by_node.get(node_id, 0) for node_id in targets)
            for node_id in schedule.node_ids:
                if node_id == schedule.source_node or node_id in targets:
                    continue
                n_rows = rows_by_node.get(node_id, 0)
                if not staging.file_space_for(planned + n_rows):
                    continue
                targets.append(node_id)
                planned += n_rows
        return {node_id: staging.open_file(node_id) for node_id in targets}

    def _source_rows(self, schedule):
        """Rows the scan is expected to read, known before it runs.

        Exact for staged sources; for server scans it is the batch's
        relevant-row total (an underestimate without filter push-down,
        which only makes the parallel gate conservative).
        """
        staging = self._staging
        if schedule.mode is DataLocation.MEMORY:
            return len(staging.memory_rows(schedule.source_node))
        if schedule.mode is DataLocation.FILE:
            return staging.file_for(schedule.source_node).row_count
        return sum(request.n_rows for request in schedule.batch)

    def _parallel_workers(self, schedule):
        """Worker count for this scan (1 = stay on a serial loop).

        The parallel path is a kernel-loop variant, so the per-row
        reference loop (``scan_kernel=False``) always stays serial;
        scans below ``scan_parallel_min_rows`` stay serial because
        pool startup and merge overhead would dominate them.
        """
        config = self._config
        if config.scan_workers <= 1 or not config.scan_kernel:
            return 1
        if self._source_rows(schedule) < config.scan_parallel_min_rows:
            return 1
        return config.scan_workers

    def _partition_rows(self, schedule, n_workers):
        """Partition size: ~2 partitions per worker, but never smaller
        than a serial scan chunk (tiny partitions would be all task
        overhead, and with a process pool all pickling)."""
        estimated = self._source_rows(schedule)
        per_partition = -(-estimated // (n_workers * 2)) if estimated else 0
        return max(self._config.scan_chunk_rows, per_partition)

    def _rows_for(self, schedule, scan):
        """The row iterator for the schedule's data source."""
        staging = self._staging
        if schedule.mode is DataLocation.SERVER:
            predicate = None
            if self._config.push_filters:
                predicate = batch_filter(
                    [request.predicate for request in schedule.batch]
                )
            relevant = sum(request.n_rows for request in schedule.batch)
            return self._strategy.rows(predicate, relevant)
        if schedule.mode is DataLocation.FILE:
            return staging.file_for(schedule.source_node).scan()
        rows = staging.memory_rows(schedule.source_node)
        model = self._server.model
        self._server.meter.charge(
            "memory_read", model.memory_row * len(rows), events=len(rows)
        )
        return iter(rows)

    # -- the scan loops ------------------------------------------------------

    def _count_rows_kernel(self, row_iter, states, file_writers,
                           memory_capture, scan):
        """Chunked routing through the compiled dispatch kernel."""
        scan.kernel = True
        class_index = self._class_index
        budget = self._budget
        kernel = RoutingKernel(
            [state.request.conditions for state in states],
            self._attr_index,
        )
        route = kernel.route
        n_probes = kernel.n_probes
        chunk_rows = self._config.scan_chunk_rows
        # Staging output is buffered per chunk and flushed in blocks.
        write_buffers = {node_id: [] for node_id in file_writers}
        capture_buffers = {node_id: [] for node_id in memory_capture}

        while True:
            chunk = list(islice(row_iter, chunk_rows))
            if not chunk:
                break
            scan.rows_seen += len(chunk)
            scan.matcher_evals += n_probes * len(chunk)
            for row in chunk:
                mask = route(row)
                if not mask:
                    continue
                scan.rows_routed += 1
                # A frontier is an antichain, so normally exactly one
                # bit is set; draining the mask keeps the module
                # correct even for overlapping request sets.
                while mask:
                    low_bit = mask & -mask
                    mask ^= low_bit
                    target = states[low_bit.bit_length() - 1]
                    node_id = target.request.node_id

                    if not target.abandoned:
                        new_pairs = target.cc.count_row_at(
                            row, target.attr_positions, row[class_index]
                        )
                        if new_pairs:
                            needed = target.cc.size_bytes
                            if needed > target.reserved:
                                deficit = needed - target.reserved
                                if budget.try_reserve(
                                    _cc_tag(node_id), deficit
                                ):
                                    target.reserved = needed
                                else:
                                    # Section 4.1.1: no new entries fit.
                                    self._abandon(target, states, scan)

                    buffer = write_buffers.get(node_id)
                    if buffer is not None:
                        buffer.append(row)
                    buffer = capture_buffers.get(node_id)
                    if buffer is not None:
                        buffer.append(row)

            for node_id, rows in write_buffers.items():
                if rows:
                    file_writers[node_id].append_rows(rows)
                    rows.clear()
            for node_id, rows in capture_buffers.items():
                if rows:
                    memory_capture[node_id].extend(rows)
                    rows.clear()

    def _count_rows_parallel(self, row_iter, states, file_writers,
                             memory_capture, scan, n_workers,
                             partition_rows):
        """Partitioned scan through a worker pool (the parallel path).

        The coordinator cuts the row source into ordered partitions
        and feeds them to ``n_workers`` pool workers, each of which
        routes its rows through the shared compiled kernel into
        *private* per-node CC partials.  Completed partials are merged
        into the real CC tables here (additive counts merge exactly),
        while staged rows funnel through one
        :class:`~repro.core.staging.PipelinedStagingWriter` strictly in
        partition order — staged files and memory captures come out
        bit-identical to a serial scan's, and flushes overlap counting.

        §4.1.1 overflow is *not* checked row-by-row: workers count
        unconditionally and the merged sizes are admitted against the
        budget afterwards, in batch order.  Deferral / SQL-fallback
        decisions therefore depend only on the merged result, never on
        worker count or partition boundaries.  (Deferred nodes get
        their estimate raised to the exact pair count, so the next
        admission reserves precisely.)

        The row source is consumed on this thread, so simulated
        per-row meter charges accumulate exactly as in a serial scan.
        """
        scan.kernel = True
        scan.workers = n_workers
        kernel = RoutingKernel(
            [state.request.conditions for state in states],
            self._attr_index,
        )
        slots = tuple(
            (state.request.node_id, state.request.attributes,
             state.attr_positions)
            for state in states
        )
        n_probes = kernel.n_probes
        stage_nodes = tuple(file_writers)
        capture_nodes = tuple(memory_capture)
        pool_cls = (
            ProcessPoolExecutor if self._config.scan_pool == "process"
            else ThreadPoolExecutor
        )

        writer = None
        if stage_nodes or capture_nodes:
            writer = PipelinedStagingWriter(file_writers, memory_capture)
        try:
            with pool_cls(
                max_workers=n_workers,
                initializer=_init_scan_worker,
                initargs=(kernel, slots, self._class_index,
                          self._spec.n_classes),
            ) as pool:
                futures = []
                seq = 0
                while True:
                    partition = list(islice(row_iter, partition_rows))
                    if not partition:
                        break
                    scan.rows_seen += len(partition)
                    scan.matcher_evals += n_probes * len(partition)
                    futures.append(
                        pool.submit(_count_partition, seq, partition,
                                    stage_nodes, capture_nodes)
                    )
                    seq += 1
                for future in futures:
                    (_, partials, routed, writes, captures,
                     seconds) = future.result()
                    scan.rows_routed += routed
                    scan.worker_seconds.append(seconds)
                    merge_started = time.perf_counter()
                    for state, partial in zip(states, partials):
                        state.cc.merge(partial)
                    scan.merge_seconds += (
                        time.perf_counter() - merge_started
                    )
                    if writer is not None:
                        writer.put(writes, captures)
        except BaseException:
            if writer is not None:
                writer.abort()
            raise
        if writer is not None:
            writer.close()

        # Deterministic §4.1.1 admission on the merged sizes.
        budget = self._budget
        for state in states:
            needed = state.cc.size_bytes
            if needed > state.reserved:
                deficit = needed - state.reserved
                if budget.try_reserve(_cc_tag(state.request.node_id),
                                      deficit):
                    state.reserved = needed
                else:
                    self._abandon(state, states, scan)

    def _count_rows(self, row_iter, matchers, file_writers, memory_capture,
                    scan):
        """The reference per-row matcher loop (``scan_kernel = False``)."""
        attribute_names = self._spec.attribute_names
        class_index = self._class_index
        budget = self._budget
        n_matchers = len(matchers)

        for row in row_iter:
            scan.rows_seen += 1
            scan.matcher_evals += n_matchers
            routed = False
            values = None
            # A frontier is an antichain, so normally exactly one node
            # matches; updating every match keeps the module correct
            # even for overlapping request sets.
            for target, match in matchers:
                if not match(row):
                    continue
                routed = True
                node_id = target.request.node_id

                if not target.abandoned:
                    if values is None:
                        values = dict(zip(attribute_names, row))
                    new_pairs = target.cc.count_row(values, row[class_index])
                    if new_pairs:
                        needed = target.cc.size_bytes
                        if needed > target.reserved:
                            deficit = needed - target.reserved
                            if budget.try_reserve(_cc_tag(node_id), deficit):
                                target.reserved = needed
                            else:
                                # Section 4.1.1: no new entries fit.
                                self._abandon(
                                    target,
                                    [state for state, _ in matchers],
                                    scan,
                                )

                writer = file_writers.get(node_id)
                if writer is not None:
                    writer.append(row)
                capture = memory_capture.get(node_id)
                if capture is not None:
                    capture.append(row)
            if routed:
                scan.rows_routed += 1

    def _abandon(self, target, states, scan):
        """Handle a CC-memory overflow for one node (Section 4.1.1).

        A node sharing the scan with other *surviving* nodes is
        deferred to a later scan with a corrected size estimate; a node
        counted alone — scanned solo, or the last survivor of a batch
        whose peers all overflowed — genuinely cannot fit and switches
        to SQL-based lazy counting (deferring it would only replay the
        same solo overflow on the next scan).
        """
        budget = self._budget
        request = target.request
        observed_pairs = target.cc.n_pairs
        target.cc = None
        budget.release(_cc_tag(request.node_id))
        target.reserved = 0
        surviving_peers = sum(
            1 for state in states
            if state is not target and not state.abandoned
        )
        if surviving_peers:
            target.deferred = True
            # The estimate was too low: raise it to what was actually
            # observed (a lower bound on the true size) so the next
            # admission reserves realistically.
            request.est_cc_pairs = max(request.est_cc_pairs + 1,
                                       observed_pairs)
            scan.deferrals += 1
        else:
            target.fallback = True
            scan.sql_fallbacks += 1

    # -- wrap-up ---------------------------------------------------------------

    def _finish(self, states, schedule, scan):
        results = []
        deferred = []
        for state in states:
            request = state.request
            if state.deferred:
                deferred.append(request)
                continue
            if state.fallback:
                cc = counts_via_sql(
                    self._server,
                    self._table_name,
                    self._spec,
                    request.attributes,
                    request.predicate
                    if request.conditions else None,
                )
            else:
                cc = state.cc
            if cc.records != request.n_rows:
                raise MiddlewareError(
                    f"node {request.node_id!r}: counted {cc.records} rows "
                    f"but the parent CC table promised {request.n_rows}"
                )
            results.append(
                CountsResult(
                    request.node_id,
                    cc,
                    schedule.mode,
                    used_sql_fallback=state.fallback,
                )
            )
            scan.nodes_served += 1
        return results, deferred

    def _release_cc_reservations(self, states):
        for state in states:
            self._budget.release(_cc_tag(state.request.node_id))
