"""The execution module (paper Section 4.1).

Given a :class:`~repro.core.scheduler.Schedule`, builds the CC tables
of every node in the batch in **one scan** of the appropriate data
source, without external sorting: as each record is retrieved, it is
routed to the (unique) active node whose path predicate it satisfies
and the node's counters are updated.

The same scan also performs the staging the scheduler planned: rows
routed to a stage-target node are appended to its new middleware file
and/or collected for middleware memory.

Runtime memory errors are handled as in Section 4.1.1.  When a node's
CC table outgrows what can be reserved there are two recoveries:

* **deferral** — if the node shared the scan with other nodes, it is
  simply counted on a *later* scan (the "multiple scans of the
  database ... to build CC tables for active nodes" of Section 5.2.1B).
  Its size estimate is raised to the pair count observed before the
  overflow, so the next admission reserves realistically.
* **SQL fallback** — if the node was scanned alone (its CC genuinely
  cannot be accommodated), it switches to the SQL-based implementation
  and its counts are fetched from the server after the scan, modelling
  the paper's lazy retrieval: the middleware never holds that table
  against its budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import MiddlewareError
from .cc_table import CCTable
from .filters import batch_filter
from .requests import CountsResult
from .scheduler import _cc_tag
from .sql_counting import counts_via_sql
from .staging import DataLocation


@dataclass
class ScanStats:
    """Counters describing one executed scan."""

    mode: DataLocation
    rows_seen: int = 0
    rows_routed: int = 0
    nodes_served: int = 0
    sql_fallbacks: int = 0
    deferrals: int = 0
    files_written: int = 0
    memory_sets_loaded: int = 0


@dataclass
class ExecutionStats:
    """Cumulative counters across a middleware session."""

    scans_by_mode: dict = field(
        default_factory=lambda: {loc: 0 for loc in DataLocation}
    )
    rows_seen: int = 0
    rows_routed: int = 0
    batches: int = 0
    sql_fallbacks: int = 0
    deferrals: int = 0
    files_written: int = 0
    memory_sets_loaded: int = 0

    def absorb(self, scan):
        self.scans_by_mode[scan.mode] += 1
        self.rows_seen += scan.rows_seen
        self.rows_routed += scan.rows_routed
        self.batches += 1
        self.sql_fallbacks += scan.sql_fallbacks
        self.deferrals += scan.deferrals
        self.files_written += scan.files_written
        self.memory_sets_loaded += scan.memory_sets_loaded

    @property
    def total_scans(self):
        return sum(self.scans_by_mode.values())


class _NodeCount:
    """Per-node counting state within one scan."""

    __slots__ = ("request", "cc", "reserved", "fallback", "deferred")

    def __init__(self, request, cc, reserved):
        self.request = request
        self.cc = cc
        self.reserved = reserved
        self.fallback = False
        self.deferred = False

    @property
    def abandoned(self):
        return self.fallback or self.deferred


class ExecutionModule:
    """Runs schedules: scan-based counting plus staging writes."""

    def __init__(self, server, table_name, spec, staging, budget, config,
                 strategy):
        self._server = server
        self._table_name = table_name
        self._spec = spec
        self._staging = staging
        self._budget = budget
        self._config = config
        self._strategy = strategy
        self._attr_index = {
            name: i for i, name in enumerate(spec.attribute_names)
        }
        self._class_index = spec.n_attributes
        self.stats = ExecutionStats()

    def run(self, schedule):
        """Execute one schedule.

        Returns ``(results, deferred)``: the fulfilled
        :class:`CountsResult` list plus any requests pushed to a later
        scan by a runtime memory overflow.
        """
        scan = ScanStats(mode=schedule.mode)
        states = self._make_states(schedule)
        matchers = [
            (state, self._make_matcher(state.request)) for state in states
        ]
        file_writers = self._open_file_writers(schedule)
        memory_capture = {
            node_id: [] for node_id in schedule.stage_memory_targets
        }

        try:
            row_iter = self._rows_for(schedule, scan)
            self._count_rows(
                row_iter, matchers, file_writers, memory_capture, scan
            )
        except Exception:
            for node_id in file_writers:
                self._staging.abandon_file(node_id)
            for node_id in memory_capture:
                self._staging.cancel_memory_reservation(node_id)
            self._release_cc_reservations(states)
            raise

        for node_id, writer in file_writers.items():
            writer.seal()
            scan.files_written += 1
        for node_id, rows in memory_capture.items():
            self._staging.commit_memory(node_id, rows)
            scan.memory_sets_loaded += 1

        try:
            results, deferred = self._finish(states, schedule, scan)
        finally:
            self._release_cc_reservations(states)
        self.stats.absorb(scan)
        return results, deferred

    # -- setup ------------------------------------------------------------

    def _make_states(self, schedule):
        states = []
        for request in schedule.batch:
            cc = CCTable(request.attributes, self._spec.n_classes)
            reserved = schedule.cc_reservations.get(request.node_id, 0)
            states.append(_NodeCount(request, cc, reserved))
        return states

    def _make_matcher(self, request):
        """Compile a node's path conditions into a tuple-level check."""
        checks = [
            (self._attr_index[c.attribute], c.op == "=", c.value)
            for c in request.conditions
        ]

        def match(row):
            for index, want_equal, value in checks:
                if (row[index] == value) != want_equal:
                    return False
            return True

        return match

    def _open_file_writers(self, schedule):
        """Writers for planned staging targets and file splits."""
        targets = list(schedule.stage_file_targets)
        if schedule.split_file:
            for node_id in schedule.node_ids:
                if node_id != schedule.source_node and node_id not in targets:
                    targets.append(node_id)
        return {node_id: self._staging.open_file(node_id) for node_id in targets}

    def _rows_for(self, schedule, scan):
        """The row iterator for the schedule's data source."""
        staging = self._staging
        if schedule.mode is DataLocation.SERVER:
            predicate = None
            if self._config.push_filters:
                predicate = batch_filter(
                    [request.predicate for request in schedule.batch]
                )
            relevant = sum(request.n_rows for request in schedule.batch)
            return self._strategy.rows(predicate, relevant)
        if schedule.mode is DataLocation.FILE:
            return staging.file_for(schedule.source_node).scan()
        rows = staging.memory_rows(schedule.source_node)
        model = self._server.model
        self._server.meter.charge(
            "memory_read", model.memory_row * len(rows), events=len(rows)
        )
        return iter(rows)

    # -- the scan loop ------------------------------------------------------

    def _count_rows(self, row_iter, matchers, file_writers, memory_capture,
                    scan):
        attribute_names = self._spec.attribute_names
        class_index = self._class_index
        budget = self._budget

        for row in row_iter:
            scan.rows_seen += 1
            routed = False
            values = None
            # A frontier is an antichain, so normally exactly one node
            # matches; updating every match keeps the module correct
            # even for overlapping request sets.
            for target, match in matchers:
                if not match(row):
                    continue
                routed = True
                node_id = target.request.node_id

                if not target.abandoned:
                    if values is None:
                        values = dict(zip(attribute_names, row))
                    new_pairs = target.cc.count_row(values, row[class_index])
                    if new_pairs:
                        needed = target.cc.size_bytes
                        if needed > target.reserved:
                            deficit = needed - target.reserved
                            if budget.try_reserve(_cc_tag(node_id), deficit):
                                target.reserved = needed
                            else:
                                # Section 4.1.1: no new entries fit.
                                self._abandon(target, matchers, scan)

                writer = file_writers.get(node_id)
                if writer is not None:
                    writer.append(row)
                capture = memory_capture.get(node_id)
                if capture is not None:
                    capture.append(row)
            if routed:
                scan.rows_routed += 1

    def _abandon(self, target, matchers, scan):
        """Handle a CC-memory overflow for one node (Section 4.1.1).

        A node sharing the scan with others is deferred to a later scan
        with a corrected size estimate; a node scanned alone genuinely
        cannot fit and switches to SQL-based lazy counting.
        """
        budget = self._budget
        request = target.request
        observed_pairs = target.cc.n_pairs
        target.cc = None
        budget.release(_cc_tag(request.node_id))
        target.reserved = 0
        if len(matchers) > 1:
            target.deferred = True
            # The estimate was too low: raise it to what was actually
            # observed (a lower bound on the true size) so the next
            # admission reserves realistically.
            request.est_cc_pairs = max(request.est_cc_pairs + 1,
                                       observed_pairs)
            scan.deferrals += 1
        else:
            target.fallback = True
            scan.sql_fallbacks += 1

    # -- wrap-up ---------------------------------------------------------------

    def _finish(self, states, schedule, scan):
        results = []
        deferred = []
        for state in states:
            request = state.request
            if state.deferred:
                deferred.append(request)
                continue
            if state.fallback:
                cc = counts_via_sql(
                    self._server,
                    self._table_name,
                    self._spec,
                    request.attributes,
                    request.predicate
                    if request.conditions else None,
                )
            else:
                cc = state.cc
            if cc.records != request.n_rows:
                raise MiddlewareError(
                    f"node {request.node_id!r}: counted {cc.records} rows "
                    f"but the parent CC table promised {request.n_rows}"
                )
            results.append(
                CountsResult(
                    request.node_id,
                    cc,
                    schedule.mode,
                    used_sql_fallback=state.fallback,
                )
            )
            scan.nodes_served += 1
        return results, deferred

    def _release_cc_reservations(self, states):
        for state in states:
            self._budget.release(_cc_tag(state.request.node_id))
