"""The execution module (paper Section 4.1).

Given a :class:`~repro.core.scheduler.Schedule`, builds the CC tables
of every node in the batch in **one scan** of the appropriate data
source, without external sorting: as each record is retrieved, it is
routed to the (unique) active node whose path predicate it satisfies
and the node's counters are updated.

The same scan also performs the staging the scheduler planned: rows
routed to a stage-target node are appended to its new middleware file
and/or collected for middleware memory.

Two scan loops implement the routing:

* the **kernel** loop (default) compiles the batch's path conditions
  into a :class:`~repro.core.filters.RoutingKernel` — one dict probe
  per constrained attribute instead of one closure call per node — and
  processes rows in configurable chunks so staging writes and memory
  capture are flushed in blocks;
* the **per-row** loop is the reference implementation: every node's
  matcher closure is evaluated against every row.  It is kept as the
  equivalence baseline behind ``config.scan_kernel = False``.

When ``config.scan_workers`` > 1 (and the source is large enough),
the kernel loop runs **partitioned**: the row source is cut into
ordered partitions, a persistent
:class:`~repro.core.scan_pool.ScanWorkerPool` (threads by default,
processes via ``config.scan_pool``; owned by the middleware session
and reused across scans) routes each partition through the same
compiled kernel into *private* per-node CC partials, and the
coordinator merges the partials into the real CC tables — CC tables
are additive count structures, so partial counts over disjoint
partitions merge exactly.  SERVER-mode scans overlap row production
with counting through a bounded prefetch thread
(``config.scan_prefetch_partitions``).  Staged rows are applied in
partition order by a :class:`~repro.core.staging.PipelinedStagingWriter`
(single funnel) or, for multi-file split scans, a
:class:`~repro.core.staging.ParallelStagingWriter` with one thread per
output file — either way staged files stay bit-identical to a serial
scan's.  Memory overflow (below) is detected on the *merged* sizes in
batch order, so recovery decisions are deterministic for any worker
count.

Every scan records profiling counters on :class:`ScanStats` — wall
time, rows/sec, matcher-evaluation counts, which loop ran, worker
count and merge time — which the middleware copies onto the session
trace.

Runtime memory errors are handled as in Section 4.1.1.  When a node's
CC table outgrows what can be reserved there are two recoveries:

* **deferral** — if the node shares the scan with other *surviving*
  nodes, it is simply counted on a *later* scan (the "multiple scans
  of the database ... to build CC tables for active nodes" of Section
  5.2.1B).  Its size estimate is raised to the pair count observed
  before the overflow, so the next admission reserves realistically.
* **SQL fallback** — if the node was scanned alone, or every co-batched
  peer has already been abandoned (so deferring would only buy it an
  identical solo scan), its CC genuinely cannot be accommodated: it
  switches to the SQL-based implementation and its counts are fetched
  from the server after the scan, modelling the paper's lazy
  retrieval: the middleware never holds that table against its budget.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Callable, Iterator, Sequence

from ..common.errors import MiddlewareError
from ..common.locks import new_lock, resource_closed, resource_created
from ..sqlengine.columnar import ColumnarPartition, columnar_available, np
from ..sqlengine.expr import TrueExpr
from .cc_table import CCTable
from .columnar_cache import (
    ColumnarScanCache,
    ColumnarScanPlan,
    staged_file_plan,
)
from .filters import RoutingKernel, batch_filter
from .requests import CountsResult
from .scan_pool import ScanWorkerPool
from .scheduler import _cc_tag
from .shm import ShmShipper, shm_available
from .sql_counting import counts_via_sql
from .staging import (
    DataLocation,
    ParallelStagingWriter,
    PipelinedStagingWriter,
    StagedFile,
)
from .vector_kernel import MAX_SLOTS, filter_supported


@dataclass
class ScanStats:
    """Counters describing one executed scan."""

    mode: DataLocation
    rows_seen: int = 0
    rows_routed: int = 0
    nodes_served: int = 0
    sql_fallbacks: int = 0
    deferrals: int = 0
    files_written: int = 0
    memory_sets_loaded: int = 0
    #: Wall-clock seconds spent producing and routing the scan's rows.
    wall_seconds: float = 0.0
    #: Condition-evaluation work: matcher closure calls in the per-row
    #: loop, dispatch-table probes in the kernel loop.
    matcher_evals: int = 0
    #: True when the compiled routing kernel ran (False = per-row loop).
    kernel: bool = False
    #: Worker tasks that counted this scan (1 = one of the serial loops).
    workers: int = 1
    #: Wall-clock seconds merging per-worker CC partials (parallel only).
    merge_seconds: float = 0.0
    #: Per-partition counting seconds as reported by the workers.
    worker_seconds: list[float] = field(default_factory=list)
    #: Wall-clock seconds spent standing the worker pool up for this
    #: scan (executor creation + kernel install; ~0 on warm reuse).
    pool_setup_seconds: float = 0.0
    #: True when the scan reused an already-running worker pool.
    pool_reused: bool = False
    #: Partitions the prefetch thread was allowed to run ahead
    #: (0 = inline pull-then-submit, or a serial scan).
    prefetch_depth: int = 0
    #: Per-file writer threads used for staging output (0 = the single
    #: pipelined funnel, or a serial scan).
    split_writers: int = 0
    #: True when the scan counted over columnar partitions (the
    #: vectorized parallel path) instead of row tuples.
    columnar: bool = False
    #: Wall-clock seconds encoding rows into columnar partitions
    #: (0.0 for row-tuple scans, and ~0 on a warm cache hit).
    encode_seconds: float = 0.0
    #: Wall-clock seconds copying partitions into shared-memory
    #: segments (the memcpy only; encoding is ``encode_seconds``).
    ship_seconds: float = 0.0
    #: True when the scan ran over the table-version columnar cache
    #: (hit or miss); False for the streaming paths.
    cached: bool = False
    #: True when the cache served an existing encoding (no re-encode,
    #: and with persistent shm no re-ship either).
    cache_hit: bool = False
    #: What building the hit entry originally cost — the work this
    #: scan skipped (0.0 on misses and uncached scans).
    encode_seconds_saved: float = 0.0
    ship_seconds_saved: float = 0.0
    #: Rows per partition the sizer chose for this scan (0 = serial).
    partition_rows: int = 0
    #: Highest prefetch depth the producer adapted to (>= the
    #: configured ``prefetch_depth`` when consumer starvation grew it;
    #: 0 without a prefetch thread).
    prefetch_peak: int = 0
    #: Access path the server strategy took for this scan ("seq" /
    #: "index" / "temp_table" / "tid_join" / "keyset"; "" for FILE and
    #: MEMORY scans, which have no server access path).
    access_path: str = ""
    #: The strategy's estimate of the access charges for that path
    #: (equals the metered charge for planner-chosen paths).
    access_cost_est: float = 0.0

    @property
    def rows_per_sec(self) -> float:
        """Scan throughput (0.0 when the scan was too fast to time)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.rows_seen / self.wall_seconds


@dataclass
class ExecutionStats:
    """Cumulative counters across a middleware session."""

    scans_by_mode: dict[DataLocation, int] = field(
        default_factory=lambda: {loc: 0 for loc in DataLocation}
    )
    rows_seen: int = 0
    rows_routed: int = 0
    batches: int = 0
    sql_fallbacks: int = 0
    deferrals: int = 0
    files_written: int = 0
    memory_sets_loaded: int = 0
    wall_seconds: float = 0.0
    matcher_evals: int = 0
    kernel_scans: int = 0
    parallel_scans: int = 0
    merge_seconds: float = 0.0
    worker_seconds_total: float = 0.0
    pool_setup_seconds: float = 0.0
    prefetched_scans: int = 0
    columnar_scans: int = 0
    encode_seconds: float = 0.0
    ship_seconds: float = 0.0
    cached_scans: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    encode_seconds_saved: float = 0.0
    ship_seconds_saved: float = 0.0
    #: SERVER scans whose access path was a secondary-index probe.
    index_path_scans: int = 0

    def absorb(self, scan: ScanStats) -> None:
        """Fold one *final* :class:`ScanStats` into the session totals.

        Called exactly once per executed scan, with that scan's own
        freshly built stats object.  When a node overflows (§4.1.1) and
        its count is retried on a later scan, the retry is a *new* scan
        with new stats — the earlier attempt's ``merge_seconds`` /
        ``worker_seconds`` must never ride along into the retry's
        record, so each ``ScanStats`` owns its per-attempt lists and
        nothing here is read from shared pool state.
        """
        self.scans_by_mode[scan.mode] += 1
        self.rows_seen += scan.rows_seen
        self.rows_routed += scan.rows_routed
        self.batches += 1
        self.sql_fallbacks += scan.sql_fallbacks
        self.deferrals += scan.deferrals
        self.files_written += scan.files_written
        self.memory_sets_loaded += scan.memory_sets_loaded
        self.wall_seconds += scan.wall_seconds
        self.matcher_evals += scan.matcher_evals
        self.kernel_scans += scan.kernel
        self.parallel_scans += scan.workers > 1
        self.merge_seconds += scan.merge_seconds
        self.worker_seconds_total += sum(scan.worker_seconds)
        self.pool_setup_seconds += scan.pool_setup_seconds
        self.prefetched_scans += scan.prefetch_depth > 0
        self.columnar_scans += scan.columnar
        self.encode_seconds += scan.encode_seconds
        self.ship_seconds += scan.ship_seconds
        self.cached_scans += scan.cached
        self.cache_hits += scan.cache_hit
        self.cache_misses += scan.cached and not scan.cache_hit
        self.encode_seconds_saved += scan.encode_seconds_saved
        self.ship_seconds_saved += scan.ship_seconds_saved
        self.index_path_scans += scan.access_path == "index"

    @property
    def total_scans(self) -> int:
        return sum(self.scans_by_mode.values())

    @property
    def rows_per_sec(self) -> float:
        """Session-wide scan throughput."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.rows_seen / self.wall_seconds


# -- partition production ----------------------------------------------------


def _close_source(source: Any) -> None:
    """Close a row/partition source if it supports closing."""
    close = getattr(source, "close", None)
    if close is not None:
        try:
            close()
        except BaseException:
            pass


def _slice_partitions(row_iter: Iterator[Any],
                      partition_rows: int) -> Iterator[list[Any]]:
    """Cut a row iterator into ordered list partitions.

    Closing this generator (directly, or via a producer's ``stop``)
    closes the underlying row source, so a cursor abandoned by a failed
    scan releases its generator state deterministically.
    """
    try:
        while True:
            partition = list(islice(row_iter, partition_rows))
            if not partition:
                return
            yield partition
    finally:
        _close_source(row_iter)


class _StopWatch:
    """A mutable seconds accumulator shared with source generators."""

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds = 0.0

    def add(self, started: float) -> None:
        self.seconds += time.perf_counter() - started


def _columnar_slices(row_iter: Iterator[Any], partition_rows: int,
                     watch: _StopWatch) -> Iterator[ColumnarPartition]:
    """Encode a row iterator into columnar partitions (SERVER scans).

    Encoding runs on whichever single thread consumes this generator
    (the prefetch producer, normally), so per-row meter charges inside
    the cursor still accrue exactly once.
    """
    try:
        while True:
            chunk = list(islice(row_iter, partition_rows))
            if not chunk:
                return
            started = time.perf_counter()
            partition = ColumnarPartition.from_rows(chunk)
            watch.add(started)
            yield partition
    finally:
        _close_source(row_iter)


def _columnar_memory_slices(table: ColumnarPartition,
                            partition_rows: int,
                            ) -> Iterator[ColumnarPartition]:
    """Zero-copy partition views over a cached in-memory encoding."""
    for start in range(0, table.n_rows, partition_rows):
        yield table.slice(start, start + partition_rows)


def _columnar_file_slices(block_iter: Iterator[Any], partition_rows: int,
                          watch: _StopWatch) -> Iterator[ColumnarPartition]:
    """Assemble staged-file int32 blocks into columnar partitions."""
    pending: list[Any] = []
    pending_rows = 0
    try:
        for block in block_iter:
            pending.append(block)
            pending_rows += int(block.shape[0])
            while pending_rows >= partition_rows:
                started = time.perf_counter()
                matrix = (
                    np.vstack(pending) if len(pending) > 1 else pending[0]
                )
                rest = matrix[partition_rows:]
                pending = [rest] if rest.shape[0] else []
                pending_rows = int(rest.shape[0])
                partition = ColumnarPartition.from_matrix(
                    matrix[:partition_rows]
                )
                watch.add(started)
                yield partition
        if pending_rows:
            started = time.perf_counter()
            matrix = np.vstack(pending) if len(pending) > 1 else pending[0]
            partition = ColumnarPartition.from_matrix(matrix)
            watch.add(started)
            yield partition
    finally:
        _close_source(block_iter)


class _PartitionSizer:
    """Adaptive partition sizing from observed worker timings.

    The static policy ("~2 partitions per worker") breaks down at the
    edges: with no row estimate it degenerated to ``scan_chunk_rows``-
    sized partitions (flooding the pool with tiny tasks), and skewed
    batches leave workers idle behind one long partition.  The sizer
    keeps the static policy as its starting point and steers two knobs
    from each scan's ``worker_seconds``:

    * partitions so fast they are all dispatch overhead → coarsen
      (fewer partitions per worker, larger blind target);
    * partitions too long — or one partition dominating the mean, the
      skew signature — → refine so stragglers can be balanced.

    Bounds keep every scan between 2 and 8 partitions per worker, so
    the parallel-path contracts (at least two partitions whenever the
    source exceeds one) hold for any observation history.
    """

    MIN_PARTS_PER_WORKER = 2
    MAX_PARTS_PER_WORKER = 8
    #: Mean partition seconds below which tasks are pure overhead.
    TOO_FAST_SECONDS = 0.002
    #: Mean partition seconds above which stragglers hurt balance.
    TOO_SLOW_SECONDS = 0.25
    #: Hard ceiling for the no-estimate partition size.
    MAX_BLIND_ROWS = 1 << 20

    def __init__(self, chunk_rows: int, adaptive: bool) -> None:
        self._chunk_rows = max(1, chunk_rows)
        self._adaptive = adaptive
        self.parts_per_worker = self.MIN_PARTS_PER_WORKER
        #: Partition size used when the schedule has no row estimate.
        #: A sane per-worker target, not one serial chunk.
        self.blind_rows = self._chunk_rows * 8

    def partition_rows(self, estimated_rows: int, n_workers: int) -> int:
        """Rows per partition for one scan."""
        if estimated_rows:
            per_partition = -(
                -estimated_rows // (n_workers * self.parts_per_worker)
            )
            return max(self._chunk_rows, per_partition)
        return max(self._chunk_rows, self.blind_rows)

    def observe(self, worker_seconds: Sequence[float],
                partition_rows: int) -> None:
        """Fold one scan's per-partition timings into the policy."""
        if not self._adaptive or not worker_seconds:
            return
        mean = sum(worker_seconds) / len(worker_seconds)
        peak = max(worker_seconds)
        if mean < self.TOO_FAST_SECONDS:
            self.parts_per_worker = max(
                self.MIN_PARTS_PER_WORKER, self.parts_per_worker - 1
            )
            self.blind_rows = min(
                max(self.blind_rows, partition_rows * 2),
                self.MAX_BLIND_ROWS,
            )
        elif mean > self.TOO_SLOW_SECONDS or (
            len(worker_seconds) > 1 and peak > 2.0 * mean
        ):
            self.parts_per_worker = min(
                self.MAX_PARTS_PER_WORKER, self.parts_per_worker + 1
            )
            self.blind_rows = max(self._chunk_rows, self.blind_rows // 2)


class _PartitionProducer:
    """Bounded async prefetch of partitions (SERVER-mode scans).

    The coordinator used to alternate pull-then-submit: materialize a
    partition from the server cursor, submit it, pull the next.  This
    producer moves the pulling onto a background thread, so the next
    partition is fetched *while* the pool counts the current one.

    Backpressure is a semaphore of *permits*, not a bounded queue: the
    producer takes one permit per partition it materializes and the
    consumer returns it when the partition is collected, so at most
    ``depth`` partitions are ever buffered — without the old 0.05s
    ``queue.put`` timeout loop, which kept the thread spinning after a
    consumer abort.  With stop/sentinel signalling through an unbounded
    queue, every blocking wait has someone responsible for waking it:
    :meth:`stop` releases a permit to unblock the producer, and the
    producer's ``finally`` always enqueues the ``_DONE`` sentinel (an
    unbounded ``put`` cannot block) to unblock the consumer.

    Depth is adaptive: when the consumer finds the buffer empty after
    having already consumed at least one partition — the pool is
    outrunning the cursor — the depth grows (up to twice the configured
    value, tracked in :attr:`peak_depth`) by releasing an extra permit.

    The source is still consumed by exactly one thread, so every
    simulated per-row meter charge accrues exactly once; only *where*
    the wall-clock time is spent changes (see ``docs/cost_model.md``).

    A producer-side failure is re-raised to the coordinator from
    :meth:`partitions`; :meth:`stop` shuts the thread down without
    raising (for scans already failing), drains anything still buffered
    (counted in :attr:`leftover` — a failed scan must pin no
    partitions) and closes the partition source.
    """

    _DONE = object()

    def __init__(self, source: Iterator[Any], depth: int,
                 max_depth: int | None = None) -> None:
        self._source = source
        self._queue: queue.Queue[Any] = queue.Queue()
        self._stop_event = threading.Event()
        depth = max(1, depth)
        self._permits = threading.Semaphore(depth)
        self._depth = depth
        self._max_depth = max(depth, max_depth if max_depth else depth)
        #: Highest depth the adaptive growth reached.
        self.peak_depth = depth
        #: Partitions still buffered when :meth:`stop` drained the queue.
        self.leftover = 0
        self._consumed = 0
        self._finished = False
        self._error_lock = new_lock("_PartitionProducer._error_lock")
        #: guarded by self._error_lock
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._produce, name="scan-prefetch", daemon=True
        )
        self._thread.start()
        resource_created("scan-prefetch", self, "partition producer thread")

    def _produce(self) -> None:
        try:
            while True:
                self._permits.acquire()
                if self._stop_event.is_set():
                    break
                partition = next(self._source, self._DONE)
                if partition is self._DONE:
                    break
                self._queue.put(partition)
        except BaseException as exc:  # surfaced via partitions()
            with self._error_lock:
                self._error = exc
        finally:
            self._queue.put(self._DONE)

    def _grow(self) -> None:
        """Consumer found the buffer empty: let the producer run ahead."""
        if self._consumed and self._depth < self._max_depth:
            self._depth += 1
            self.peak_depth = self._depth
            self._permits.release()

    def _join_thread(self) -> None:
        if not self._finished:
            self._finished = True
            self._thread.join()
            resource_closed("scan-prefetch", self)

    def partitions(self) -> Iterator[Any]:
        """Yield partitions in scan order; re-raises producer errors."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                self._grow()
                item = self._queue.get()
            if item is self._DONE:
                self._join_thread()
                with self._error_lock:
                    error = self._error
                if error is not None:
                    raise error
                return
            self._consumed += 1
            yield item
            self._permits.release()

    def stop(self) -> None:
        """Shut the producer down without raising (failure path)."""
        self._stop_event.set()
        self._permits.release()
        self._join_thread()
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not self._DONE:
                self.leftover += 1
        _close_source(self._source)


class _NodeCount:
    """Per-node counting state within one scan."""

    __slots__ = ("request", "cc", "reserved", "fallback", "deferred",
                 "attr_positions")

    def __init__(self, request: Any, cc: CCTable, reserved: int,
                 attr_positions: tuple[tuple[str, int], ...]) -> None:
        self.request = request
        #: The node's CC table (None once the node is abandoned).
        self.cc: Any = cc
        self.reserved = reserved
        self.fallback = False
        self.deferred = False
        #: Precomputed (attribute, row index) pairs for tuple counting.
        self.attr_positions = attr_positions

    @property
    def abandoned(self) -> bool:
        return self.fallback or self.deferred


class ExecutionModule:
    """Runs schedules: scan-based counting plus staging writes."""

    def __init__(self, server: Any, table_name: str, spec: Any,
                 staging: Any, budget: Any, config: Any, strategy: Any,
                 pool_provider: Callable[[], ScanWorkerPool] | None = None,
                 ) -> None:
        self._server = server
        self._table_name = table_name
        self._spec = spec
        self._staging = staging
        self._budget = budget
        self._config = config
        self._strategy = strategy
        #: Zero-arg callable returning the session's shared
        #: :class:`ScanWorkerPool` (the middleware binds its own pool
        #: here).  None — or ``config.scan_pool_reuse`` off — builds a
        #: throwaway per-scan pool instead.
        self._pool_provider = pool_provider
        self._attr_index = {
            name: i for i, name in enumerate(spec.attribute_names)
        }
        self._class_index = spec.n_attributes
        self._sizer = _PartitionSizer(
            config.scan_chunk_rows, config.scan_adaptive_partitions
        )
        #: Table-version columnar cache ("encode once, scan every
        #: level"); None when disabled or numpy is unavailable.
        self._scan_cache: ColumnarScanCache | None = None
        if config.scan_columnar_cache and columnar_available():
            self._scan_cache = ColumnarScanCache(config.scan_cache_bytes)
            # Staged files are immutable once sealed, so the only
            # invalidation they need is drop-time eviction.
            staging.add_drop_listener(self._scan_cache.on_file_dropped)
        self.stats = ExecutionStats()
        #: The :class:`ScanStats` of the most recent :meth:`run`.
        self.last_scan: ScanStats | None = None

    @property
    def scan_cache(self) -> ColumnarScanCache | None:
        """The session's columnar scan cache (observability / tests)."""
        return self._scan_cache

    def close(self) -> None:
        """Release the scan cache and its persistent shm segments.

        Called by the middleware after the worker pool is closed (so no
        worker still holds an attachment) and before staging teardown.
        Idempotent.
        """
        if self._scan_cache is not None:
            self._scan_cache.close()

    def run(self, schedule: Any) -> tuple[list[CountsResult], list[Any]]:
        """Execute one schedule.

        Returns ``(results, deferred)``: the fulfilled
        :class:`CountsResult` list plus any requests pushed to a later
        scan by a runtime memory overflow.
        """
        scan = ScanStats(mode=schedule.mode)
        states = self._make_states(schedule)
        file_writers = self._open_file_writers(schedule)
        memory_capture: dict[Any, list[Any]] = {
            node_id: [] for node_id in schedule.stage_memory_targets
        }

        started = time.perf_counter()
        try:
            workers = self._parallel_workers(schedule)
            plan = self._cache_plan(schedule) if workers > 1 else None
            if plan is not None:
                self._count_cached_columnar(
                    schedule, plan, states, file_writers,
                    memory_capture, scan, workers,
                    self._partition_rows(schedule, workers),
                )
            elif workers > 1:
                row_iter = self._rows_for(schedule, scan)
                self._count_rows_parallel(
                    schedule, row_iter, states, file_writers,
                    memory_capture, scan, workers,
                    self._partition_rows(schedule, workers),
                )
            elif self._config.scan_kernel:
                row_iter = self._rows_for(schedule, scan)
                self._count_rows_kernel(
                    row_iter, states, file_writers, memory_capture, scan
                )
            else:
                matchers = [
                    (state, self._make_matcher(state.request))
                    for state in states
                ]
                self._count_rows(
                    self._rows_for(schedule, scan), matchers,
                    file_writers, memory_capture, scan,
                )
        except BaseException:
            # BaseException, not Exception: a KeyboardInterrupt (or
            # SystemExit) mid-scan must not leak open staging writers
            # or CC/memory reservations either.
            for node_id in file_writers:
                self._staging.abandon_file(node_id)
            for node_id in memory_capture:
                self._staging.cancel_memory_reservation(node_id)
            self._release_cc_reservations(states)
            raise
        scan.wall_seconds = time.perf_counter() - started

        if schedule.mode is DataLocation.SERVER:
            choice = getattr(self._strategy, "last_choice", None)
            if choice is not None:
                scan.access_path = choice.path
                scan.access_cost_est = choice.est_cost

        for node_id, writer in file_writers.items():
            writer.seal()
            scan.files_written += 1
        for node_id, rows in memory_capture.items():
            self._staging.commit_memory(node_id, rows)
            scan.memory_sets_loaded += 1

        try:
            results, deferred = self._finish(states, schedule, scan)
        finally:
            self._release_cc_reservations(states)
        self.stats.absorb(scan)
        self.last_scan = scan
        return results, deferred

    # -- setup ------------------------------------------------------------

    def _make_states(self, schedule: Any) -> list[_NodeCount]:
        states = []
        for request in schedule.batch:
            cc = CCTable(request.attributes, self._spec.n_classes)
            reserved = schedule.cc_reservations.get(request.node_id, 0)
            positions = tuple(
                (name, self._attr_index[name]) for name in request.attributes
            )
            states.append(_NodeCount(request, cc, reserved, positions))
        return states

    def _make_matcher(
        self, request: Any
    ) -> Callable[[Sequence[Any]], bool]:
        """Compile a node's path conditions into a tuple-level check."""
        checks = [
            (self._attr_index[c.attribute], c.op == "=", c.value)
            for c in request.conditions
        ]

        def match(row: Sequence[Any]) -> bool:
            for index, want_equal, value in checks:
                if (row[index] == value) != want_equal:
                    return False
            return True

        return match

    def _open_file_writers(self, schedule: Any) -> dict[Any, StagedFile]:
        """Writers for planned staging targets and file splits.

        Planned ``stage_file_targets`` were budget-checked by the
        scheduler; §4.3.2 split files are decided here, so the same
        file-space budget is enforced per split target — targets whose
        data would overflow ``file_budget_bytes`` are skipped (their
        nodes are still counted; they just keep reading the source).
        """
        staging = self._staging
        targets = list(schedule.stage_file_targets)
        if schedule.split_file:
            rows_by_node = {r.node_id: r.n_rows for r in schedule.batch}
            planned = sum(rows_by_node.get(node_id, 0) for node_id in targets)
            for node_id in schedule.node_ids:
                if node_id == schedule.source_node or node_id in targets:
                    continue
                n_rows = rows_by_node.get(node_id, 0)
                if not staging.file_space_for(planned + n_rows):
                    continue
                targets.append(node_id)
                planned += n_rows
        return {node_id: staging.open_file(node_id) for node_id in targets}

    def _source_rows(self, schedule: Any) -> int:
        """Rows the scan is expected to read, known before it runs.

        Exact for staged sources; for server scans it is the batch's
        relevant-row total (an underestimate without filter push-down,
        which only makes the parallel gate conservative).
        """
        staging = self._staging
        if schedule.mode is DataLocation.MEMORY:
            return len(staging.memory_rows(schedule.source_node))
        if schedule.mode is DataLocation.FILE:
            return staging.file_for(schedule.source_node).row_count
        return sum(request.n_rows for request in schedule.batch)

    def _parallel_workers(self, schedule: Any) -> int:
        """Worker count for this scan (1 = stay on a serial loop).

        The parallel path is a kernel-loop variant, so the per-row
        reference loop (``scan_kernel=False``) always stays serial;
        scans below ``scan_parallel_min_rows`` stay serial because
        pool startup and merge overhead would dominate them.
        """
        config = self._config
        if config.scan_workers <= 1 or not config.scan_kernel:
            return 1
        if self._source_rows(schedule) < config.scan_parallel_min_rows:
            return 1
        return config.scan_workers

    def _partition_rows(self, schedule: Any, n_workers: int) -> int:
        """Partition size for one parallel scan, via the adaptive sizer.

        Starts at ~2 partitions per worker and never goes below a
        serial scan chunk (tiny partitions would be all task overhead,
        and with a process pool all shipping); scans without a row
        estimate get the sizer's blind per-worker target instead of
        degenerating to one chunk per partition.
        """
        return self._sizer.partition_rows(
            self._source_rows(schedule), n_workers
        )

    def _rows_for(self, schedule: Any, scan: ScanStats) -> Iterator[Any]:
        """The row iterator for the schedule's data source."""
        staging = self._staging
        if schedule.mode is DataLocation.SERVER:
            predicate = None
            if self._config.push_filters:
                predicate = batch_filter(
                    [request.predicate for request in schedule.batch]
                )
            relevant = sum(request.n_rows for request in schedule.batch)
            return self._strategy.rows(predicate, relevant)
        if schedule.mode is DataLocation.FILE:
            return staging.file_for(schedule.source_node).scan()
        rows = staging.memory_rows(schedule.source_node)
        model = self._server.model
        self._server.meter.charge(
            "memory_read", model.memory_row * len(rows), events=len(rows)
        )
        return iter(rows)

    # -- the scan loops ------------------------------------------------------

    def _count_rows_kernel(self, row_iter: Iterator[Any],
                           states: list[_NodeCount],
                           file_writers: dict[Any, StagedFile],
                           memory_capture: dict[Any, list[Any]],
                           scan: ScanStats) -> None:
        """Chunked routing through the compiled dispatch kernel."""
        scan.kernel = True
        class_index = self._class_index
        budget = self._budget
        kernel = RoutingKernel(
            [state.request.conditions for state in states],
            self._attr_index,
        )
        route = kernel.route
        n_probes = kernel.n_probes
        chunk_rows = self._config.scan_chunk_rows
        # Staging output is buffered per chunk and flushed in blocks.
        write_buffers: dict[Any, list[Any]] = {
            node_id: [] for node_id in file_writers
        }
        capture_buffers: dict[Any, list[Any]] = {
            node_id: [] for node_id in memory_capture
        }

        while True:
            chunk = list(islice(row_iter, chunk_rows))
            if not chunk:
                break
            scan.rows_seen += len(chunk)
            scan.matcher_evals += n_probes * len(chunk)
            for row in chunk:
                mask = route(row)
                if not mask:
                    continue
                scan.rows_routed += 1
                # A frontier is an antichain, so normally exactly one
                # bit is set; draining the mask keeps the module
                # correct even for overlapping request sets.
                while mask:
                    low_bit = mask & -mask
                    mask ^= low_bit
                    target = states[low_bit.bit_length() - 1]
                    node_id = target.request.node_id

                    if not target.abandoned:
                        new_pairs = target.cc.count_row_at(
                            row, target.attr_positions, row[class_index]
                        )
                        if new_pairs:
                            needed = target.cc.size_bytes
                            if needed > target.reserved:
                                deficit = needed - target.reserved
                                if budget.try_reserve(
                                    _cc_tag(node_id), deficit
                                ):
                                    target.reserved = needed
                                else:
                                    # Section 4.1.1: no new entries fit.
                                    self._abandon(target, states, scan)

                    buffer = write_buffers.get(node_id)
                    if buffer is not None:
                        buffer.append(row)
                    buffer = capture_buffers.get(node_id)
                    if buffer is not None:
                        buffer.append(row)

            for node_id, rows in write_buffers.items():
                if rows:
                    file_writers[node_id].append_rows(rows)
                    rows.clear()
            for node_id, rows in capture_buffers.items():
                if rows:
                    memory_capture[node_id].extend(rows)
                    rows.clear()

    def _acquire_pool(self) -> tuple[ScanWorkerPool, bool]:
        """The worker pool for one parallel scan: ``(pool, owned)``.

        The session's persistent pool is used whenever the middleware
        provided one and ``config.scan_pool_reuse`` is on; otherwise a
        throwaway pool is built (and, ``owned`` = True, closed by the
        caller after the scan) — the cold-start baseline.
        """
        if self._config.scan_pool_reuse and self._pool_provider is not None:
            return self._pool_provider(), False
        return (
            ScanWorkerPool(self._config.scan_pool,
                           self._config.scan_workers),
            True,
        )

    @staticmethod
    def _scan_signature(states: list[_NodeCount]) -> tuple[Any, ...]:
        """Equality key for a schedule's routing kernel (pool install)."""
        return tuple(
            (state.request.node_id,
             tuple(state.request.conditions),
             tuple(state.request.attributes))
            for state in states
        )

    def _count_rows_parallel(self, schedule: Any, row_iter: Iterator[Any],
                             states: list[_NodeCount],
                             file_writers: dict[Any, StagedFile],
                             memory_capture: dict[Any, list[Any]],
                             scan: ScanStats, n_workers: int,
                             partition_rows: int) -> None:
        """Partitioned scan through the worker pool (the parallel path).

        The row source is cut into ordered partitions — inline for
        staged sources, through a bounded :class:`_PartitionProducer`
        prefetch thread for SERVER scans — and submitted to the
        session's persistent :class:`ScanWorkerPool`, which routes each
        partition through the shared compiled kernel into *private*
        per-node CC partials.  At most ``2 × workers`` partitions are
        in flight; completed partials are merged into the real CC
        tables in submission order (additive counts merge exactly),
        and each partition's staged rows are handed — strictly in
        partition order — to a per-file
        :class:`~repro.core.staging.ParallelStagingWriter` (multi-file
        split scans) or the single
        :class:`~repro.core.staging.PipelinedStagingWriter`.  Staged
        files and memory captures come out bit-identical to a serial
        scan's, and flushes overlap counting.

        On failure the scan drains its outstanding futures, stops the
        prefetch thread and aborts the staging writer *before*
        re-raising, so no half-written staged file survives (the
        caller deletes the abandoned files) and the persistent pool
        carries no stale work into the next scan.

        §4.1.1 overflow is *not* checked row-by-row: workers count
        unconditionally and the merged sizes are admitted against the
        budget afterwards, in batch order.  Deferral / SQL-fallback
        decisions therefore depend only on the merged result, never on
        worker count, partition boundaries, prefetch depth or writer
        arrangement.  (Deferred nodes get their estimate raised to the
        exact pair count, so the next admission reserves precisely.)

        The row source is consumed by exactly one thread (this one, or
        the prefetch producer), so simulated per-row meter charges
        accumulate exactly as in a serial scan.

        When the columnar kernel is available (numpy importable,
        ``config.scan_columnar`` on, batch narrow enough for the int64
        candidate masks) the scan runs through
        :meth:`_count_rows_parallel_columnar` instead — same structure,
        but partitions are typed column arrays and counting is
        vectorized; this row-tuple path is the fallback.
        """
        if (self._config.scan_columnar and columnar_available()
                and len(states) <= MAX_SLOTS):
            self._count_rows_parallel_columnar(
                schedule, row_iter, states, file_writers, memory_capture,
                scan, n_workers, partition_rows,
            )
            return
        scan.kernel = True
        scan.workers = n_workers
        scan.partition_rows = partition_rows
        kernel = RoutingKernel(
            [state.request.conditions for state in states],
            self._attr_index,
        )
        slots = tuple(
            (state.request.node_id, state.request.attributes,
             state.attr_positions)
            for state in states
        )
        n_probes = kernel.n_probes
        stage_nodes = tuple(file_writers)
        capture_nodes = tuple(memory_capture)

        pool, owned = self._acquire_pool()
        scan.pool_reused = pool.active
        scan.pool_setup_seconds = pool.install(
            self._scan_signature(states), kernel, slots,
            self._class_index, self._spec.n_classes,
        )

        writer: ParallelStagingWriter | PipelinedStagingWriter | None = None
        if stage_nodes or capture_nodes:
            if (len(file_writers) > 1
                    and self._config.scan_split_writers):
                writer = ParallelStagingWriter(file_writers, memory_capture)
                scan.split_writers = writer.n_writers
            else:
                writer = PipelinedStagingWriter(file_writers, memory_capture)

        producer: _PartitionProducer | None = None
        partitions: Iterator[list[Any]]
        prefetch = self._config.scan_prefetch_partitions
        if schedule.mode is DataLocation.SERVER and prefetch > 0:
            producer = _PartitionProducer(
                _slice_partitions(row_iter, partition_rows), prefetch,
                max_depth=self._adaptive_prefetch_cap(prefetch),
            )
            partitions = producer.partitions()
            scan.prefetch_depth = prefetch
        else:
            partitions = _slice_partitions(row_iter, partition_rows)

        def collect(future: Any) -> None:
            (_, partials, routed, writes, captures,
             seconds) = future.result()
            scan.rows_routed += routed
            scan.worker_seconds.append(seconds)
            merge_started = time.perf_counter()
            for state, partial in zip(states, partials):
                state.cc.merge(partial)
            scan.merge_seconds += time.perf_counter() - merge_started
            if writer is not None:
                writer.put(writes, captures)

        inflight: deque[Any] = deque()
        max_inflight = max(2, 2 * n_workers)
        try:
            for seq, partition in enumerate(partitions):
                scan.rows_seen += len(partition)
                scan.matcher_evals += n_probes * len(partition)
                inflight.append(
                    pool.submit(seq, partition, stage_nodes, capture_nodes)
                )
                if len(inflight) >= max_inflight:
                    collect(inflight.popleft())
            while inflight:
                collect(inflight.popleft())
            if writer is not None:
                writer.close()
        except BaseException as exc:
            if producer is not None:
                producer.stop()
            else:
                _close_source(partitions)
            pool.drain(inflight)
            if writer is not None:
                writer.abort()
            pool.retire_broken(exc)
            raise
        finally:
            if producer is not None:
                scan.prefetch_peak = producer.peak_depth
            if owned:
                pool.close()

        self._admit_merged(states, scan)
        self._sizer.observe(scan.worker_seconds, partition_rows)

    def _adaptive_prefetch_cap(self, prefetch: int) -> int:
        """Ceiling for adaptive prefetch growth (2× the configured depth)."""
        if not self._config.scan_adaptive_partitions:
            return prefetch
        return prefetch * 2

    def _admit_merged(self, states: list[_NodeCount],
                      scan: ScanStats) -> None:
        """Deterministic §4.1.1 admission on the merged sizes."""
        budget = self._budget
        for state in states:
            needed = state.cc.size_bytes
            if needed > state.reserved:
                deficit = needed - state.reserved
                if budget.try_reserve(_cc_tag(state.request.node_id),
                                      deficit):
                    state.reserved = needed
                else:
                    self._abandon(state, states, scan)

    def _count_rows_parallel_columnar(
            self, schedule: Any, row_iter: Iterator[Any],
            states: list[_NodeCount],
            file_writers: dict[Any, StagedFile],
            memory_capture: dict[Any, list[Any]],
            scan: ScanStats, n_workers: int,
            partition_rows: int) -> None:
        """The vectorized parallel path: columnar partitions, zero-copy.

        Structure mirrors :meth:`_count_rows_parallel`; the differences
        are what travels and how counting happens:

        * partitions are :class:`ColumnarPartition` objects — typed
          column buffers + null masks — built once at the source
          (encoded from cursor rows for SERVER scans, zero-copy slices
          of a cached session encoding for MEMORY scans, int32 block
          matrices for FILE scans);
        * process pools ship each partition through a
          ``multiprocessing.shared_memory`` segment (one memcpy; only
          the tiny segment handle is pickled) when
          ``config.scan_shared_memory`` allows — the segment's
          lifecycle is witnessed, created here and released when the
          partition's result is collected, and the failure path closes
          every still-live segment before re-raising;
        * workers return pre-aggregated count *blocks* (folded via
          ``CCTable.merge_block``) and staging output as selected-row
          index arrays; the coordinator decodes staged rows from its
          pinned partition copy, keeping staged files bit-identical to
          a serial scan's.

        §4.1.1 admission, writer arrangement, drain-on-failure and
        meter-charge placement are identical to the row-tuple path.
        """
        scan.kernel = True
        scan.columnar = True
        scan.workers = n_workers
        scan.partition_rows = partition_rows
        kernel = RoutingKernel(
            [state.request.conditions for state in states],
            self._attr_index,
        )
        slots = tuple(
            (state.request.node_id, state.request.attributes,
             state.attr_positions)
            for state in states
        )
        n_probes = kernel.n_probes
        stage_nodes = tuple(file_writers)
        capture_nodes = tuple(memory_capture)

        pool, owned = self._acquire_pool()
        scan.pool_reused = pool.active
        scan.pool_setup_seconds = pool.install(
            self._scan_signature(states), kernel, slots,
            self._class_index, self._spec.n_classes,
        )

        writer: ParallelStagingWriter | PipelinedStagingWriter | None = None
        if stage_nodes or capture_nodes:
            if (len(file_writers) > 1
                    and self._config.scan_split_writers):
                writer = ParallelStagingWriter(file_writers, memory_capture)
                scan.split_writers = writer.n_writers
            else:
                writer = PipelinedStagingWriter(file_writers, memory_capture)

        encode_watch = _StopWatch()
        ship_watch = _StopWatch()
        shipper: ShmShipper | None = None
        if (pool.kind == "process" and self._config.scan_shared_memory
                and shm_available()):
            shipper = ShmShipper()

        staging = self._staging
        producer: _PartitionProducer | None = None
        partitions: Iterator[ColumnarPartition]
        if schedule.mode is DataLocation.SERVER:
            source = _columnar_slices(row_iter, partition_rows, encode_watch)
            prefetch = self._config.scan_prefetch_partitions
            if prefetch > 0:
                producer = _PartitionProducer(
                    source, prefetch,
                    max_depth=self._adaptive_prefetch_cap(prefetch),
                )
                partitions = producer.partitions()
                scan.prefetch_depth = prefetch
            else:
                partitions = source
        elif schedule.mode is DataLocation.FILE:
            # The row iterator was never started — dropping it unread
            # performs no reads and charges nothing.
            _close_source(row_iter)
            partitions = _columnar_file_slices(
                staging.file_for(schedule.source_node).scan_blocks(),
                partition_rows, encode_watch,
            )
        else:
            # MEMORY: _rows_for already charged the memory read; count
            # over zero-copy slices of the cached columnar encoding.
            _close_source(row_iter)
            encode_started = time.perf_counter()
            table = staging.columnar_memory(schedule.source_node)
            encode_watch.add(encode_started)
            partitions = _columnar_memory_slices(table, partition_rows)

        #: seq -> (partition pinned for staged-row decode | None,
        #:         shm segment name | None); entries live from submit
        #: until collect, so a failed scan can release everything.
        pinned: dict[int, tuple[ColumnarPartition | None, str | None]] = {}

        def collect(future: Any) -> None:
            (seq, payloads, routed, writes_idx, captures_idx,
             seconds) = future.result()
            partition, segment = pinned.pop(seq)
            if shipper is not None and segment is not None:
                shipper.release(segment)
            scan.rows_routed += routed
            scan.worker_seconds.append(seconds)
            merge_started = time.perf_counter()
            for state, payload in zip(states, payloads):
                state.cc.merge_block(*payload)
            scan.merge_seconds += time.perf_counter() - merge_started
            if writer is not None and partition is not None:
                writes = {
                    node_id: partition.rows_at(idx)
                    for node_id, idx in writes_idx.items() if len(idx)
                }
                captures = {
                    node_id: partition.rows_at(idx)
                    for node_id, idx in captures_idx.items() if len(idx)
                }
                writer.put(writes, captures)

        inflight: deque[Any] = deque()
        max_inflight = max(2, 2 * n_workers)
        try:
            for seq, partition in enumerate(partitions):
                scan.rows_seen += partition.n_rows
                scan.matcher_evals += n_probes * partition.n_rows
                shipped: Any = partition
                segment: str | None = None
                if shipper is not None:
                    ship_started = time.perf_counter()
                    handle = shipper.ship(partition)
                    ship_watch.add(ship_started)
                    shipped = handle
                    segment = handle.segment
                pinned[seq] = (
                    partition if writer is not None else None, segment
                )
                inflight.append(
                    pool.submit_columnar(
                        seq, shipped, stage_nodes, capture_nodes
                    )
                )
                if len(inflight) >= max_inflight:
                    collect(inflight.popleft())
            while inflight:
                collect(inflight.popleft())
            if writer is not None:
                writer.close()
        except BaseException as exc:
            if producer is not None:
                producer.stop()
            else:
                _close_source(partitions)
            pool.drain(inflight)
            if writer is not None:
                writer.abort()
            if shipper is not None:
                shipper.close()
            pool.retire_broken(exc)
            raise
        finally:
            pinned.clear()
            if shipper is not None:
                # Idempotent: releases only what a failure left behind.
                shipper.close()
            scan.encode_seconds = encode_watch.seconds
            scan.ship_seconds = ship_watch.seconds
            if producer is not None:
                scan.prefetch_peak = producer.peak_depth
            if owned:
                pool.close()

        self._admit_merged(states, scan)
        self._sizer.observe(scan.worker_seconds, partition_rows)

    def _cache_plan(self, schedule: Any) -> ColumnarScanPlan | None:
        """A table-version cache plan for this scan, or None to stream.

        None falls back to the existing paths — the cache is an overlay,
        never a requirement.  A plan needs: the cache enabled (numpy
        present, ``scan_columnar_cache`` on), the columnar kernel
        eligible (``scan_columnar`` on, batch narrow enough for the
        int64 candidate masks), a worker-side filter the vector kernel
        can evaluate, a strategy that can describe its scan as a plan,
        and an encoding the byte budget could plausibly hold.  MEMORY
        scans already count over a cached encoding and stay put.

        Ordering note: for the §4.3.3 strategies ``plan_columnar`` may
        eagerly (re)build the auxiliary structure, so the admission
        gate runs *after* planning; a plan declined for size leaves the
        strategy exactly where the streaming path expects it.
        """
        cache = self._scan_cache
        if (cache is None or not self._config.scan_columnar
                or not columnar_available()
                or len(schedule.batch) > MAX_SLOTS):
            return None
        if schedule.mode is DataLocation.MEMORY:
            return None
        plan: ColumnarScanPlan | None
        if schedule.mode is DataLocation.FILE:
            plan = staged_file_plan(
                self._staging.file_for(schedule.source_node)
            )
        else:
            predicate = None
            if self._config.push_filters:
                predicate = batch_filter(
                    [request.predicate for request in schedule.batch]
                )
            if not filter_supported(predicate):
                return None
            relevant = sum(request.n_rows for request in schedule.batch)
            plan = self._strategy.plan_columnar(predicate, relevant)
        if plan is None:
            return None
        if not cache.admissible(plan, self._spec.n_attributes + 1):
            return None
        return plan

    def _count_cached_columnar(
            self, schedule: Any, plan: ColumnarScanPlan,
            states: list[_NodeCount],
            file_writers: dict[Any, StagedFile],
            memory_capture: dict[Any, list[Any]],
            scan: ScanStats, n_workers: int,
            partition_rows: int) -> None:
        """Count over the cached full-source encoding ("warm scan").

        Structure mirrors :meth:`_count_rows_parallel_columnar`, with
        the encode/ship stages hoisted out of the per-scan loop:

        * the full source is encoded **once per table version** — a
          cache hit skips encoding entirely; a miss encodes from the
          plan's unmetered source and installs the result;
        * with a process pool + persistent shm the encoding lives in
          one long-lived witnessed segment; workers get a generation-
          counted :class:`~repro.core.shm.ShmSegmentRef` and re-attach
          only when the generation moves, so an unchanged table costs
          zero copies after its first scan;
        * workers receive ``(start, stop)`` bounds plus the pushed
          batch filter and evaluate it as a vector keep-mask
          (:func:`~repro.core.vector_kernel.predicate_mask` replicates
          SQL comparison semantics exactly), so per-scan filters stay
          out of the cache key;
        * meter charges are applied explicitly from the plan — a
          cache-served scan costs exactly what its streaming twin
          would (see ``docs/cost_model.md``).

        Staged-row index arrays come back slice-relative; the
        coordinator re-bases them onto the full encoding before
        decoding, keeping staged files bit-identical to a serial
        scan's.  §4.1.1 admission and drain-on-failure are unchanged.
        A failure mid-count leaves the cache untouched — a miss admits
        its entry only after encoding completes, and the encoding is
        valid regardless of how the count ends — so the next scan hits
        (or re-ships) cleanly.
        """
        scan.kernel = True
        scan.columnar = True
        scan.cached = True
        scan.workers = n_workers
        scan.partition_rows = partition_rows
        kernel = RoutingKernel(
            [state.request.conditions for state in states],
            self._attr_index,
        )
        slots = tuple(
            (state.request.node_id, state.request.attributes,
             state.attr_positions)
            for state in states
        )
        n_probes = kernel.n_probes
        stage_nodes = tuple(file_writers)
        capture_nodes = tuple(memory_capture)

        pool, owned = self._acquire_pool()
        scan.pool_reused = pool.active
        scan.pool_setup_seconds = pool.install(
            self._scan_signature(states), kernel, slots,
            self._class_index, self._spec.n_classes,
        )

        writer: ParallelStagingWriter | PipelinedStagingWriter | None = None
        if stage_nodes or capture_nodes:
            if (len(file_writers) > 1
                    and self._config.scan_split_writers):
                writer = ParallelStagingWriter(file_writers, memory_capture)
                scan.split_writers = writer.n_writers
            else:
                writer = PipelinedStagingWriter(file_writers, memory_capture)

        cache = self._scan_cache
        assert cache is not None
        entry = cache.lookup(plan.key)
        hit = entry is not None
        if entry is not None:
            scan.cache_hit = True
            scan.encode_seconds_saved = entry.encode_seconds
            scan.ship_seconds_saved = entry.ship_seconds
        else:
            encode_started = time.perf_counter()
            partition = plan.encode()
            encode_seconds = time.perf_counter() - encode_started
            ship = (pool.kind == "process"
                    and self._config.scan_shared_memory
                    and self._config.scan_persistent_shm
                    and shm_available())
            entry = cache.admit(plan.key, partition, ship=ship)
            entry.encode_seconds = encode_seconds
            scan.encode_seconds = encode_seconds
            scan.ship_seconds = entry.ship_seconds
        if hit or plan.charge_on_miss:
            plan.charge_scan()

        table = entry.partition
        assert table is not None
        source: Any = entry.ref if entry.ref is not None else table
        keep_spec: tuple[Any, dict[str, int]] | None = None
        if (plan.filter_expr is not None
                and not isinstance(plan.filter_expr, TrueExpr)):
            keep_spec = (plan.filter_expr, self._attr_index)

        #: seq -> the slice's row offset in the full encoding, for
        #: re-basing staged/captured index arrays at collect time.
        offsets: dict[int, int] = {}
        total_seen = 0

        def collect(future: Any) -> None:
            nonlocal total_seen
            (seq, payloads, routed, writes_idx, captures_idx,
             seconds, seen) = future.result()
            base = offsets.pop(seq)
            total_seen += seen
            scan.rows_seen += seen
            scan.matcher_evals += n_probes * seen
            scan.rows_routed += routed
            scan.worker_seconds.append(seconds)
            merge_started = time.perf_counter()
            for state, payload in zip(states, payloads):
                state.cc.merge_block(*payload)
            scan.merge_seconds += time.perf_counter() - merge_started
            if writer is not None:
                writes = {
                    node_id: table.rows_at(idx + base)
                    for node_id, idx in writes_idx.items() if len(idx)
                }
                captures = {
                    node_id: table.rows_at(idx + base)
                    for node_id, idx in captures_idx.items() if len(idx)
                }
                writer.put(writes, captures)

        inflight: deque[Any] = deque()
        max_inflight = max(2, 2 * n_workers)
        try:
            for seq, start in enumerate(
                range(0, table.n_rows, partition_rows)
            ):
                stop = min(start + partition_rows, table.n_rows)
                offsets[seq] = start
                inflight.append(
                    pool.submit_columnar_slice(
                        seq, source, start, stop, keep_spec,
                        stage_nodes, capture_nodes,
                    )
                )
                if len(inflight) >= max_inflight:
                    collect(inflight.popleft())
            while inflight:
                collect(inflight.popleft())
            if writer is not None:
                writer.close()
        except BaseException as exc:
            pool.drain(inflight)
            if writer is not None:
                writer.abort()
            pool.retire_broken(exc)
            # The raised traceback pins this frame's locals; the
            # partition views must not outlive the cache entry that
            # owns the segment, or releasing it trips BufferError.
            del table, source, entry
            raise
        finally:
            offsets.clear()
            if owned:
                pool.close()

        if hit or plan.charge_on_miss:
            plan.charge_rows(total_seen)
        self._admit_merged(states, scan)
        self._sizer.observe(scan.worker_seconds, partition_rows)

    def _count_rows(
        self,
        row_iter: Iterator[Any],
        matchers: list[tuple[_NodeCount, Callable[[Sequence[Any]], bool]]],
        file_writers: dict[Any, StagedFile],
        memory_capture: dict[Any, list[Any]],
        scan: ScanStats,
    ) -> None:
        """The reference per-row matcher loop (``scan_kernel = False``)."""
        attribute_names = self._spec.attribute_names
        class_index = self._class_index
        budget = self._budget
        n_matchers = len(matchers)

        for row in row_iter:
            scan.rows_seen += 1
            scan.matcher_evals += n_matchers
            routed = False
            values: dict[str, Any] | None = None
            # A frontier is an antichain, so normally exactly one node
            # matches; updating every match keeps the module correct
            # even for overlapping request sets.
            for target, match in matchers:
                if not match(row):
                    continue
                routed = True
                node_id = target.request.node_id

                if not target.abandoned:
                    if values is None:
                        values = dict(zip(attribute_names, row))
                    new_pairs = target.cc.count_row(values, row[class_index])
                    if new_pairs:
                        needed = target.cc.size_bytes
                        if needed > target.reserved:
                            deficit = needed - target.reserved
                            if budget.try_reserve(_cc_tag(node_id), deficit):
                                target.reserved = needed
                            else:
                                # Section 4.1.1: no new entries fit.
                                self._abandon(
                                    target,
                                    [state for state, _ in matchers],
                                    scan,
                                )

                writer = file_writers.get(node_id)
                if writer is not None:
                    writer.append(row)
                capture = memory_capture.get(node_id)
                if capture is not None:
                    capture.append(row)
            if routed:
                scan.rows_routed += 1

    def _abandon(self, target: _NodeCount, states: list[_NodeCount],
                 scan: ScanStats) -> None:
        """Handle a CC-memory overflow for one node (Section 4.1.1).

        A node sharing the scan with other *surviving* nodes is
        deferred to a later scan with a corrected size estimate; a node
        counted alone — scanned solo, or the last survivor of a batch
        whose peers all overflowed — genuinely cannot fit and switches
        to SQL-based lazy counting (deferring it would only replay the
        same solo overflow on the next scan).
        """
        budget = self._budget
        request = target.request
        observed_pairs = target.cc.n_pairs
        target.cc = None
        budget.release(_cc_tag(request.node_id))
        target.reserved = 0
        surviving_peers = sum(
            1 for state in states
            if state is not target and not state.abandoned
        )
        if surviving_peers:
            target.deferred = True
            # The estimate was too low: raise it to what was actually
            # observed (a lower bound on the true size) so the next
            # admission reserves realistically.
            request.est_cc_pairs = max(request.est_cc_pairs + 1,
                                       observed_pairs)
            scan.deferrals += 1
        else:
            target.fallback = True
            scan.sql_fallbacks += 1

    # -- wrap-up ---------------------------------------------------------------

    def _finish(
        self, states: list[_NodeCount], schedule: Any, scan: ScanStats
    ) -> tuple[list[CountsResult], list[Any]]:
        results = []
        deferred = []
        for state in states:
            request = state.request
            if state.deferred:
                deferred.append(request)
                continue
            if state.fallback:
                cc = counts_via_sql(
                    self._server,
                    self._table_name,
                    self._spec,
                    request.attributes,
                    request.predicate
                    if request.conditions else None,
                )
            else:
                cc = state.cc
            if cc.records != request.n_rows:
                raise MiddlewareError(
                    f"node {request.node_id!r}: counted {cc.records} rows "
                    f"but the parent CC table promised {request.n_rows}"
                )
            results.append(
                CountsResult(
                    request.node_id,
                    cc,
                    schedule.mode,
                    used_sql_fallback=state.fallback,
                )
            )
            scan.nodes_served += 1
        return results, deferred

    def _release_cc_reservations(self, states: list[_NodeCount]) -> None:
        for state in states:
            self._budget.release(_cc_tag(state.request.node_id))
