"""Execution tracing: one structured record per scheduled scan.

The paper explains its system's behaviour through what each scan did
(source tier, batch composition, staging actions).  The middleware
records exactly that, so tests can assert scheduling behaviour and
users can audit why a run cost what it did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class ScheduleRecord:
    """What one scan was asked to do and what happened."""

    sequence: int
    mode: str                 # SERVER / FILE / MEMORY
    source_node: object       # staged ancestor id, None for server scans
    batch: tuple[str, ...]    # node ids serviced, in Rule-3 order
    stage_file_targets: tuple[str, ...]
    stage_memory_targets: tuple[str, ...]
    split_file: bool
    rows_seen: int
    rows_routed: int
    deferrals: int
    sql_fallbacks: int
    cost: float               # simulated cost charged during the scan
    # -- per-scan profiling (scan-kernel observability layer) --
    #: Wall-clock seconds spent producing and routing the scan's rows.
    wall_seconds: float = 0.0
    #: rows_seen / wall_seconds, 0.0 when the scan was too fast to time.
    rows_per_sec: float = 0.0
    #: Matcher closure calls (per-row loop) or dispatch probes (kernel).
    matcher_evals: int = 0
    #: True when the compiled routing kernel ran this scan.
    kernel: bool = False
    #: Worker tasks that counted the scan (1 = a serial loop).
    workers: int = 1
    #: Seconds spent merging per-worker CC partials (parallel scans).
    merge_seconds: float = 0.0
    #: Seconds of pool/kernel setup this scan paid (0.0 on a warm pool
    #: with an unchanged kernel — the reuse win the trace makes visible).
    pool_setup_seconds: float = 0.0
    #: SERVER-cursor prefetch depth in effect (0 = inline pulls).
    prefetch_depth: int = 0
    #: Per-file staging writer threads used (0 = single pipelined funnel).
    split_writers: int = 0
    #: True when the scan counted over columnar partitions.
    columnar: bool = False
    #: Seconds encoding rows into columnar partitions (~0 on a warm
    #: cache hit; 0.0 for serial or row-tuple scans).
    encode_seconds: float = 0.0
    #: Seconds copying partitions into shared-memory segments (the
    #: memcpy only; 0.0 for serial or row-tuple scans, and for warm
    #: scans served by a persistent segment).
    ship_seconds: float = 0.0
    #: Highest prefetch depth the adaptive producer reached (0 = none).
    prefetch_peak: int = 0
    #: True when the scan counted over the table-version columnar
    #: cache; ``cache_hit`` says whether the encoding was reused.
    cached: bool = False
    cache_hit: bool = False
    #: Access path the server-side strategy took ("seq" / "index" /
    #: "temp_table" / "tid_join" / "keyset"; "" for non-SERVER scans).
    access_path: str = ""
    #: The strategy's access-cost estimate for that path (0.0 when
    #: no path was recorded).
    access_cost_est: float = 0.0

    def __str__(self) -> str:
        actions = []
        if self.stage_file_targets:
            actions.append(f"stage->file{list(self.stage_file_targets)}")
        if self.stage_memory_targets:
            actions.append(f"stage->mem{list(self.stage_memory_targets)}")
        if self.split_file:
            actions.append("split")
        if self.deferrals:
            actions.append(f"deferred={self.deferrals}")
        if self.sql_fallbacks:
            actions.append(f"sql_fallback={self.sql_fallbacks}")
        suffix = f" [{', '.join(actions)}]" if actions else ""
        profile = ""
        if self.wall_seconds > 0.0:
            loop = "kernel" if self.kernel else "per-row"
            if self.workers > 1:
                loop += f" x{self.workers}w"
            if self.cached:
                loop += " warm" if self.cache_hit else " cold"
            profile = f" {self.rows_per_sec:,.0f} rows/s ({loop})"
        path = f" via={self.access_path}" if self.access_path else ""
        return (
            f"#{self.sequence} {self.mode}"
            f"{f'({self.source_node})' if self.source_node is not None else ''}"
            f"{path}"
            f" batch={len(self.batch)} rows={self.rows_seen}"
            f" cost={self.cost:.1f}{profile}{suffix}"
        )


@dataclass
class ExecutionTrace:
    """The ordered sequence of :class:`ScheduleRecord` for one session."""

    records: list[ScheduleRecord] = field(default_factory=list)

    def add(self, record: ScheduleRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ScheduleRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> ScheduleRecord:
        return self.records[index]

    def by_mode(self, mode_name: str) -> list[ScheduleRecord]:
        """Records whose scan ran in the given tier."""
        return [r for r in self.records if r.mode == mode_name]

    @property
    def total_cost(self) -> float:
        return sum(r.cost for r in self.records)

    def render(self) -> str:
        """Multi-line human-readable trace."""
        return "\n".join(str(record) for record in self.records)
