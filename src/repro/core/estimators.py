"""Size estimators (paper Section 4.2.1).

Two quantities drive scheduling:

* ``|n|`` — the data size of an active node.  This is known *exactly*
  from the parent's CC table: a split on ``A = v`` sends exactly
  ``sum(vector(A, v))`` records to the child, and the "other" branch
  receives the remainder.
* ``CC(n)`` — the node's CC-table size, which can only be estimated.
  The paper chooses ``Est_cc(n) = (|n| / |p|) * Σ_j card(p, A_j)``
  (independence of the partitioning attribute from the rest), noting it
  is conservative and that ``card(p, A_j)`` is exact, so the estimate
  does not compound errors down the tree.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

from ..common.errors import MiddlewareError


def exact_child_rows_for_value(parent_cc: Any, attribute: str,
                               value: object) -> int:
    """``|n|`` for the child reached via ``attribute = value``."""
    return int(sum(parent_cc.vector(attribute, value)))


def exact_child_rows_for_other(parent_cc: Any, attribute: str,
                               values: Iterable[object]) -> int:
    """``|n|`` for the residual branch ``attribute NOT IN values``."""
    taken = sum(
        exact_child_rows_for_value(parent_cc, attribute, value)
        for value in values
    )
    remainder = int(parent_cc.records) - taken
    if remainder < 0:
        raise MiddlewareError(
            "child sizes exceed parent size — inconsistent CC table"
        )
    return remainder


def estimate_cc_pairs(child_rows: int, parent_rows: int,
                      parent_cards: Mapping[str, int],
                      child_attributes: Iterable[str]) -> int:
    """``Est_cc(n)`` in (attribute, value) pairs.

    :param child_rows: exact ``|n|``.
    :param parent_rows: exact ``|p|``.
    :param parent_cards: mapping attribute -> ``card(p, A_j)`` from the
        parent's CC table.
    :param child_attributes: attributes still present at the child (can
        be one fewer than at the parent when the split fixed a value).

    The estimate is floored at one pair per remaining attribute (every
    attribute takes at least one value in non-empty data) and capped at
    the parent's pair total, the trivial upper bound the paper derives
    from ``card(n, A_j) <= card(p, A_j)``.
    """
    # Materialize once: a generator argument would otherwise be
    # exhausted by the summation loop, silently zeroing the floor.
    child_attributes = tuple(child_attributes)
    if parent_rows <= 0:
        raise MiddlewareError("parent_rows must be positive")
    if child_rows < 0:
        raise MiddlewareError("child_rows must be non-negative")
    if child_rows == 0:
        return 0
    total_parent_pairs = 0
    for attribute in child_attributes:
        try:
            total_parent_pairs += parent_cards[attribute]
        except KeyError:
            raise MiddlewareError(
                f"parent CC has no cardinality for {attribute!r}"
            ) from None
    estimate = math.ceil(child_rows / parent_rows * total_parent_pairs)
    estimate = max(estimate, len(child_attributes))
    return min(estimate, total_parent_pairs)


def root_cc_pairs(spec: Any,
                  attributes: Iterable[str] | None = None) -> int:
    """Pair bound for the root, where no parent CC exists.

    The root's CC can at most contain every (attribute, value) pair of
    the schema, which the catalog knows exactly.
    """
    names = list(attributes) if attributes is not None else spec.attribute_names
    return int(sum(spec.cardinality(name) for name in names))
