"""Shared-memory shipping of columnar partitions to process workers.

Pickling a 100k-row partition to a process worker copies every row
three times (pickle, pipe, unpickle) and was the single largest cost in
the 0.36x parallel-scan regression.  The shipper instead copies the
partition's column arrays once into a ``multiprocessing.shared_memory``
segment and pickles only a tiny :class:`ShmPartitionHandle` (segment
name + per-column offsets); the worker attaches read-only and counts
over zero-copy views.

Lifecycle is explicit and witnessed: every segment is announced to the
PR 5 resource monitor as a ``"shm-segment"`` resource when created and
retired when released, so a segment that outlives its scan is a
sanitizer *finding*, not a silent ``/dev/shm`` leak.  The coordinator
owns every segment — workers only ever attach and close — and
:meth:`ShmShipper.close` releases anything still live, which is what
the failure path relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..common.locks import resource_closed, resource_created
from ..sqlengine.columnar import ColumnarPartition

try:  # pragma: no cover - stdlib, but gate anyway (some minimal builds)
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]

shared_memory: Any = _shared_memory


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` is usable."""
    return shared_memory is not None


@dataclass(frozen=True)
class ShmColumnSpec:
    """Where one column lives inside a segment.

    ``null_offset`` is -1 when the column has no null mask; ``values``
    is the dictionary (tuple of original objects) for DICT columns and
    ``None`` for RAW ones.
    """

    kind: str
    dtype: str
    data_offset: int
    null_offset: int
    values: Optional[tuple[Any, ...]]


@dataclass(frozen=True)
class ShmPartitionHandle:
    """The only thing pickled per partition: name + layout."""

    segment: str
    n_rows: int
    columns: tuple[ShmColumnSpec, ...]


@dataclass(frozen=True)
class ShmSegmentRef:
    """A *persistent* segment a worker may already have attached.

    The columnar cache ships each table version once and then hands
    workers this generation-counted reference scan after scan (the
    same trick :class:`~repro.core.scan_pool.ScanWorkerPool` plays
    with kernel installs): a worker re-attaches only when
    ``generation`` differs from the one it has cached, so an unchanged
    table costs zero copies and zero attaches after the first scan.
    """

    generation: int
    handle: ShmPartitionHandle


class ShmShipper:
    """Creates, tracks and releases the coordinator's shm segments.

    Single-threaded by design: ship/release/close all run on the
    coordinating scan thread, so no lock is needed — only the failure
    path must remember that :meth:`close` is idempotent.
    """

    def __init__(self) -> None:
        self._live: dict[str, Any] = {}
        self.shipped = 0

    def ship(self, partition: ColumnarPartition,
             persistent: bool = False) -> ShmPartitionHandle:
        """Copy ``partition`` into a fresh segment; returns its handle.

        ``persistent`` only affects the sanitizer witness detail: the
        columnar cache's segments legitimately outlive individual scans
        (they die with the cache entry), and the marker keeps that
        visible in leak reports.
        """
        total, specs = partition.layout()
        segment = shared_memory.SharedMemory(create=True, size=total)
        try:
            partition.write_into(segment.buf)
        except BaseException:
            segment.close()
            segment.unlink()
            raise
        self._live[segment.name] = segment
        self.shipped += 1
        lifetime = " persistent" if persistent else ""
        resource_created(
            "shm-segment", segment,
            f"{segment.name} rows={partition.n_rows} bytes={total}"
            f"{lifetime}",
        )
        return ShmPartitionHandle(
            segment=segment.name,
            n_rows=partition.n_rows,
            columns=tuple(
                ShmColumnSpec(kind, dtype, data_offset, null_offset, values)
                for kind, dtype, data_offset, null_offset, values in specs
            ),
        )

    def release(self, name: str) -> None:
        """Close and unlink one segment (no-op if already released).

        A ``BufferError`` on close means a numpy view over the buffer
        is still alive (dropped references the GC has not collected
        yet); the segment is unlinked regardless — on POSIX the memory
        is reclaimed once the last mapping dies with the view.
        """
        segment = self._live.pop(name, None)
        if segment is None:
            return
        resource_closed("shm-segment", segment)
        try:
            segment.close()
        except BufferError:
            pass
        segment.unlink()

    def segment(self, name: str) -> Any:
        """The live segment object for ``name``.

        The columnar cache rebuilds its resident partition as a
        zero-copy view over the shipped segment (one physical copy for
        coordinator *and* workers), so it needs the buffer back after
        :meth:`ship`.  Raises :class:`KeyError` for released segments.
        """
        return self._live[name]

    @property
    def live_segments(self) -> int:
        return len(self._live)

    def close(self) -> None:
        """Release every live segment.  Idempotent; never raises."""
        for name in list(self._live):
            try:
                self.release(name)
            except OSError:  # pragma: no cover - already-gone segment
                pass


def attach_readonly(name: str) -> Any:
    """Attach to an existing segment without adopting ownership.

    Python < 3.13 has no ``track=False``; whether the default tracking
    is harmful depends on the start method.  Forked workers share the
    coordinator's resource tracker, so the attach's duplicate
    registration is a no-op and the coordinator's ``unlink`` retires
    the name — unregistering here would turn that unlink into a noisy
    double-remove.  Spawn children run a *private* tracker that would
    unlink the segment when the worker exits — stealing it from the
    coordinator — so there the attachment must be unregistered.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    segment = shared_memory.SharedMemory(name=name)
    try:
        import multiprocessing

        if multiprocessing.get_start_method(allow_none=True) == "spawn":
            from multiprocessing import resource_tracker

            resource_tracker.unregister(
                getattr(segment, "_name", "/" + name), "shared_memory"
            )
    except Exception:  # noqa: BLE001 - tracker quirks must not kill scans
        pass
    return segment


def partition_from_handle(segment: Any,
                          handle: ShmPartitionHandle) -> ColumnarPartition:
    """Rebuild the zero-copy partition view over an attached segment."""
    specs = [
        (spec.kind, spec.dtype, spec.data_offset, spec.null_offset,
         spec.values)
        for spec in handle.columns
    ]
    return ColumnarPartition.from_buffer(segment.buf, handle.n_rows, specs)
