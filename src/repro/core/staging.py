"""Data staging: server → middleware file system → middleware memory.

As the tree grows, the relevant data set shrinks monotonically, so the
middleware copies ("stages") data downwards (Section 4.1.2):

* **FILE** — a node's rows are written to a middleware staging file;
  scanning it is much cheaper than a server scan, but still reads the
  *whole* file.  Files can be *split* (Section 4.3.2): when the active
  nodes being served cover a small fraction of a file, fresh per-node
  files are written so future scans read less.
* **MEMORY** — a node's rows are loaded into middleware memory,
  accounted against the same :class:`~repro.common.memory.MemoryBudget`
  as CC tables; scans become nearly free.

Staging files are real files: fixed-width little-endian int32 records
under a temporary directory, one file per staged node.
"""

from __future__ import annotations

import enum
import itertools
import os
import queue
import struct
import tempfile
import threading

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from ..common.errors import StagingError
from ..common.locks import new_lock, resource_closed, resource_created
from ..sqlengine.columnar import ColumnarPartition, columnar_available, np


class DataLocation(enum.IntEnum):
    """Where a node's data currently lives (ordered worst to best)."""

    SERVER = 0
    FILE = 1
    MEMORY = 2

    @property
    def tag(self) -> str:
        """The paper's single-letter node prefix (Fig. 1): S / I / L."""
        return {self.SERVER: "S", self.FILE: "I", self.MEMORY: "L"}[self]


class StagedFile:
    """One middleware staging file holding a node's rows.

    I/O is blocked: writes accumulate packed records in a buffer that
    is flushed every :data:`BLOCK_ROWS` rows (and at :meth:`seal`), and
    :meth:`scan` reads multi-row blocks decoded with
    ``struct.iter_unpack``.  Cost metering is unchanged — the simulated
    per-row file I/O charges are accumulated by row count exactly as
    the record-at-a-time implementation charged them.
    """

    #: Rows per physical I/O block (writes buffer up to this many
    #: packed records; reads fetch this many records per ``read``).
    BLOCK_ROWS = 1024

    #: Process-wide uid source; never reused, so a cache entry keyed
    #: by uid can only ever refer to this file object.
    _UIDS = itertools.count(1)

    def __init__(self, path: str, n_fields: int, owner_node: Any,
                 meter: Any, model: Any) -> None:
        #: Stable identity for scan-side caches.  Paths can be reused
        #: after a drop (the staging dir is shared); uids cannot.
        self.uid = next(StagedFile._UIDS)
        self._path = path
        self._struct = struct.Struct(f"<{n_fields}i")
        self.owner_node = owner_node
        self._meter = meter
        self._model = model
        self._row_count = 0
        self._handle = open(path, "wb")
        self._writing = True
        self._buffer: list[bytes] = []
        #: Scans currently iterating this file (guards `delete`).
        self._active_scans = 0
        #: Physical I/O blocks flushed so far (observability; a
        #: zero-row append must never bump this).
        self.blocks_flushed = 0
        #: ``append``/``append_rows`` calls that actually added rows.
        self.write_calls = 0
        # The open write handle is a witnessed resource: it is retired
        # by seal() (clean) or delete() (abandoned); a staged file the
        # scan opened and then forgot is a sanitizer leak finding.
        resource_created("staged-file", self, f"owner={owner_node!r}")

    @property
    def path(self) -> str:
        return self._path

    @property
    def row_count(self) -> int:
        return self._row_count

    def append(self, row: Sequence[int]) -> None:
        """Buffer one row for writing."""
        if not self._writing:
            raise StagingError("staged file is already sealed")
        self._buffer.append(self._struct.pack(*row))
        self._row_count += 1
        self.write_calls += 1
        if len(self._buffer) >= self.BLOCK_ROWS:
            self._flush()

    def append_rows(self, rows: Iterable[Sequence[int]]) -> None:
        """Buffer many rows at once (one flush check per block).

        An empty iterable is a strict no-op: a zero-row split partition
        must not bump flush counters, force a physical flush, or change
        what :meth:`seal` will meter — so serial and parallel scans
        (whose partitioning can hand a writer empty slices) account
        identically.
        """
        if not self._writing:
            raise StagingError("staged file is already sealed")
        pack = self._struct.pack
        packed = [pack(*row) for row in rows]
        if not packed:
            return
        self._buffer.extend(packed)
        self._row_count += len(packed)
        self.write_calls += 1
        if len(self._buffer) >= self.BLOCK_ROWS:
            self._flush()

    def _flush(self) -> None:
        if self._buffer:
            self._handle.write(b"".join(self._buffer))
            self._buffer.clear()
            self.blocks_flushed += 1

    def seal(self) -> None:
        """Finish writing and charge the accumulated write cost."""
        if self._writing:
            self._flush()
            self._handle.close()
            self._writing = False
            resource_closed("staged-file", self)
            self._meter.charge(
                "file_write",
                self._model.file_write_row * self._row_count,
                events=self._row_count,
            )

    def scan(self) -> Iterator[tuple[int, ...]]:
        """Yield all rows; charges per-row file-read cost.

        Determinism guards: the file must be sealed first (every scan
        of a staged file sees exactly the committed ``row_count`` rows,
        never a torn prefix), and a sealed file can never carry
        unflushed rows.  Several scans may iterate concurrently — each
        opens its own handle and meters its own rows — but the file
        cannot be deleted while any of them is active.
        """
        if self._writing:
            raise StagingError("seal the file before scanning it")
        if self._buffer:
            raise StagingError(
                "sealed staging file still holds unflushed rows"
            )
        record = self._struct
        block = record.size * self.BLOCK_ROWS
        rows_read = 0
        self._active_scans += 1
        try:
            with open(self._path, "rb") as handle:
                while True:
                    chunk = handle.read(block)
                    usable = len(chunk) - len(chunk) % record.size
                    if not usable:
                        break
                    for row in record.iter_unpack(chunk[:usable]):
                        rows_read += 1
                        yield row
                    if len(chunk) < block:
                        break
        finally:
            self._active_scans -= 1
            self._meter.charge(
                "file_read",
                self._model.file_row_io * rows_read,
                events=rows_read,
            )

    #: meter parity with StagedFile.scan
    def scan_blocks(self) -> Iterator[Any]:
        """Yield row blocks as int32 matrices (the columnar scan path).

        Same guards, same concurrency accounting and — crucially — the
        same simulated metering as :meth:`scan`: the per-row file-read
        charge accrues in the ``finally`` for exactly the rows read.
        Each yielded block is a ``(rows, n_fields)`` little-endian
        int32 array decoded straight from the packed record bytes
        (no per-row ``struct`` unpacking).
        """
        if not columnar_available():
            raise StagingError("columnar scans need numpy")
        if self._writing:
            raise StagingError("seal the file before scanning it")
        if self._buffer:
            raise StagingError(
                "sealed staging file still holds unflushed rows"
            )
        record = self._struct
        n_fields = record.size // 4
        block = record.size * self.BLOCK_ROWS
        rows_read = 0
        self._active_scans += 1
        try:
            with open(self._path, "rb") as handle:
                while True:
                    chunk = handle.read(block)
                    usable = len(chunk) - len(chunk) % record.size
                    if not usable:
                        break
                    matrix = np.frombuffer(
                        chunk[:usable], dtype="<i4"
                    ).reshape(-1, n_fields)
                    rows_read += int(matrix.shape[0])
                    yield matrix
                    if len(chunk) < block:
                        break
        finally:
            self._active_scans -= 1
            self._meter.charge(
                "file_read",
                self._model.file_row_io * rows_read,
                events=rows_read,
            )

    #: meter parity with StagedFile.scan
    def charge_cached_read(self) -> None:
        """Meter one full scan's read cost without touching the disk.

        A scan served from a cached columnar encoding of this file must
        cost exactly what :meth:`scan` / :meth:`scan_blocks` would have
        charged — the cache is a wall-clock optimisation, never a cost-
        model change (see ``docs/cost_model.md``).
        """
        self._meter.charge(
            "file_read",
            self._model.file_row_io * self._row_count,
            events=self._row_count,
        )

    def delete(self) -> None:
        """Remove the file from disk."""
        if self._active_scans:
            raise StagingError(
                f"cannot delete {self._path!r}: "
                f"{self._active_scans} scan(s) still active"
            )
        if self._writing:
            self._buffer.clear()
            self._handle.close()
            self._writing = False
            resource_closed("staged-file", self)
        if os.path.exists(self._path):
            os.remove(self._path)

    def __repr__(self) -> str:
        return (
            f"StagedFile(owner={self.owner_node!r}, rows={self._row_count})"
        )


class PipelinedStagingWriter:
    """Single-writer funnel for a parallel scan's staging output.

    Scan workers never touch staging files.  The scan coordinator
    queues each partition's staged rows here *in partition order*, and
    one background thread appends them to the staging files and
    memory-capture lists while later partitions are still being
    counted — block flushes overlap counting instead of serializing
    behind it.  Ordered submission keeps staged files bit-identical to
    a serial scan's.

    The queue is bounded (default depth 2 — double buffering: one
    block being flushed, one queued behind it), so a slow disk applies
    backpressure to the scan instead of buffering unbounded rows.

    Writer-thread failures are captured and re-raised on the next
    :meth:`put` or at :meth:`close`; once an error is recorded the
    thread keeps draining the queue without writing, so producers are
    never left blocked on a full queue.
    """

    _STOP = object()

    def __init__(self, file_writers: Mapping[Any, StagedFile],
                 memory_capture: Mapping[Any, list[Any]],
                 depth: int = 2) -> None:
        self._file_writers = file_writers
        self._memory_capture = memory_capture
        self._queue: queue.Queue[Any] = queue.Queue(maxsize=max(1, depth))
        self._error_lock = new_lock("PipelinedStagingWriter._error_lock")
        #: guarded by self._error_lock
        self._error: BaseException | None = None
        self._closed = False
        self._thread = threading.Thread(
            target=self._drain, name="staging-writer", daemon=True
        )
        self._thread.start()
        resource_created("staging-writer", self, "pipelined funnel")

    def put(self, file_rows: Mapping[Any, list[Any]],
            capture_rows: Mapping[Any, list[Any]]) -> None:
        """Queue one partition's staged rows.

        ``file_rows`` / ``capture_rows`` map node_id -> row list; the
        caller must submit partitions in scan order.
        """
        if self._error is not None:
            raise self._error
        if self._closed:
            raise StagingError("staging writer is already closed")
        if file_rows or capture_rows:
            self._queue.put((file_rows, capture_rows))

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is self._STOP:
                return
            if self._error is not None:
                continue  # keep draining so producers never block
            file_rows, capture_rows = item
            try:
                for node_id, rows in file_rows.items():
                    if rows:
                        self._file_writers[node_id].append_rows(rows)
                for node_id, rows in capture_rows.items():
                    if rows:
                        self._memory_capture[node_id].extend(rows)
            except BaseException as exc:  # surfaced to the producer
                with self._error_lock:
                    if self._error is None:
                        self._error = exc

    def close(self) -> None:
        """Flush everything and surface any writer-thread error."""
        self._shutdown()
        if self._error is not None:
            raise self._error

    def abort(self) -> None:
        """Stop without raising (the scan is already failing)."""
        self._shutdown()

    def _shutdown(self) -> None:
        if not self._closed:
            self._closed = True
            self._queue.put(self._STOP)
            self._thread.join()
            resource_closed("staging-writer", self)


class ParallelStagingWriter:
    """Per-file writer threads for a parallel scan's staging output.

    The §4.3.2 file-split path can open many output files in one scan
    (one per surviving batch node); funnelling them all through the
    single :class:`PipelinedStagingWriter` thread serializes every
    split behind one appender.  This writer gives each output
    :class:`StagedFile` its own thread and its own bounded queue, so
    independent files flush concurrently while counting continues.

    Determinism is preserved per file: the coordinator calls
    :meth:`put` strictly in partition order, each file's rows land on
    that file's FIFO queue in that order, and a single thread drains
    each queue — so every staged file is bit-identical to a serial
    scan's.  Memory captures are applied inline on the coordinator
    (list extends are cheap and stay ordered).

    Error propagation mirrors the single-writer funnel: the first
    writer-thread failure is recorded and re-raised on the next
    :meth:`put` or at :meth:`close`; a failed thread keeps draining its
    queue without writing so the producer is never left blocked, and
    :meth:`abort` shuts every thread down without raising.
    """

    _STOP = object()

    def __init__(self, file_writers: Mapping[Any, StagedFile],
                 memory_capture: Mapping[Any, list[Any]],
                 depth: int = 2) -> None:
        self._memory_capture = memory_capture
        self._error_lock = new_lock("ParallelStagingWriter._error_lock")
        #: guarded by self._error_lock
        self._error: BaseException | None = None
        self._closed = False
        self._queues: dict[Any, queue.Queue[Any]] = {}
        self._threads: list[threading.Thread] = []
        for node_id, writer in file_writers.items():
            q: queue.Queue[Any] = queue.Queue(maxsize=max(1, depth))
            thread = threading.Thread(
                target=self._drain,
                args=(writer, q),
                name=f"staging-writer-{node_id}",
                daemon=True,
            )
            self._queues[node_id] = q
            self._threads.append(thread)
            thread.start()
        resource_created(
            "staging-writer", self, f"{len(self._threads)} split writers"
        )

    @property
    def n_writers(self) -> int:
        """Writer threads running (one per output file)."""
        return len(self._threads)

    def put(self, file_rows: Mapping[Any, list[Any]],
            capture_rows: Mapping[Any, list[Any]]) -> None:
        """Queue one partition's staged rows (in partition order)."""
        if self._error is not None:
            raise self._error
        if self._closed:
            raise StagingError("staging writer is already closed")
        for node_id, rows in file_rows.items():
            if rows:
                self._queues[node_id].put(rows)
        for node_id, rows in capture_rows.items():
            if rows:
                self._memory_capture[node_id].extend(rows)

    def _drain(self, writer: StagedFile, q: queue.Queue[Any]) -> None:
        while True:
            item = q.get()
            if item is self._STOP:
                return
            if self._error is not None:
                continue  # keep draining so the producer never blocks
            try:
                writer.append_rows(item)
            except BaseException as exc:  # surfaced to the producer
                with self._error_lock:
                    if self._error is None:
                        self._error = exc

    def close(self) -> None:
        """Flush every file and surface the first writer-thread error."""
        self._shutdown()
        if self._error is not None:
            raise self._error

    def abort(self) -> None:
        """Stop without raising (the scan is already failing)."""
        self._shutdown()

    def _shutdown(self) -> None:
        if not self._closed:
            self._closed = True
            for q in self._queues.values():
                q.put(self._STOP)
            for thread in self._threads:
                thread.join()
            resource_closed("staging-writer", self)


class StagingManager:
    """Tracks which nodes have staged data and where."""

    def __init__(self, spec: Any, meter: Any, model: Any, budget: Any,
                 staging_dir: str | None = None,
                 file_budget_bytes: int | None = None) -> None:
        self._spec = spec
        self._meter = meter
        self._model = model
        self._budget = budget
        self._file_budget = file_budget_bytes
        self._files: dict[Any, StagedFile] = {}
        self._memory: dict[Any, list[Any]] = {}
        #: Called with each StagedFile as it is dropped/abandoned, so
        #: scan-side caches can evict that file's encoding eagerly.
        self._drop_listeners: list[Callable[[StagedFile], None]] = []
        #: Lazily built columnar encodings of in-memory data sets, so
        #: repeated parallel scans of one staged set pay the encode
        #: once and slice zero-copy afterwards.  Pure cache: holds no
        #: budget and is invalidated whenever the rows are dropped.
        self._memory_columnar: dict[Any, ColumnarPartition] = {}
        self._n_fields = spec.n_attributes + 1
        self._row_bytes = spec.row_bytes
        self._file_counter = 0
        self._tempdir: tempfile.TemporaryDirectory[str] | None
        if staging_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-stage-")
            self._dir = self._tempdir.name
        else:
            self._tempdir = None
            self._dir = staging_dir
            os.makedirs(staging_dir, exist_ok=True)

    # -- budgets -----------------------------------------------------------

    @property
    def file_bytes_used(self) -> int:
        """Simulated bytes currently staged in files."""
        return sum(f.row_count * self._row_bytes for f in self._files.values())

    def file_space_for(self, n_rows: int) -> bool:
        """True if a file of ``n_rows`` fits the file-space budget."""
        if self._file_budget is None:
            return True
        needed = n_rows * self._row_bytes
        return self.file_bytes_used + needed <= self._file_budget

    def memory_bytes_for(self, n_rows: int) -> int:
        """Simulated bytes to hold ``n_rows`` in middleware memory."""
        return n_rows * self._row_bytes

    # -- lookup ------------------------------------------------------------

    def resolve(self, request: Any) -> tuple[DataLocation, Any]:
        """Best data source for ``request``: ``(location, source_node)``.

        Rule 1 ordering: an in-memory ancestor beats any file, a file
        beats the server.  Among several staged ancestors of the same
        tier, the *nearest* (deepest) one wins — its data set is the
        smallest superset of the node's.
        """
        for node_id in reversed(request.lineage):
            if node_id in self._memory:
                return DataLocation.MEMORY, node_id
        for node_id in reversed(request.lineage):
            if node_id in self._files:
                return DataLocation.FILE, node_id
        return DataLocation.SERVER, None

    def memory_rows(self, node_id: Any) -> list[Any]:
        try:
            return self._memory[node_id]
        except KeyError:
            raise StagingError(f"no memory data staged for {node_id!r}") from None

    def columnar_memory(self, node_id: Any) -> ColumnarPartition:
        """The columnar encoding of a node's in-memory rows (cached)."""
        table = self._memory_columnar.get(node_id)
        if table is None:
            table = ColumnarPartition.from_rows(self.memory_rows(node_id))
            self._memory_columnar[node_id] = table
        return table

    def file_for(self, node_id: Any) -> StagedFile:
        try:
            return self._files[node_id]
        except KeyError:
            raise StagingError(f"no file staged for {node_id!r}") from None

    def memory_nodes(self) -> list[Any]:
        return sorted(self._memory, key=str)

    def file_nodes(self) -> list[Any]:
        return sorted(self._files, key=str)

    # -- staging writes ------------------------------------------------------

    def open_file(self, node_id: Any) -> StagedFile:
        """Create (and register) a staging file for ``node_id``."""
        if node_id in self._files:
            raise StagingError(f"{node_id!r} already has a staged file")
        self._file_counter += 1
        path = os.path.join(self._dir, f"stage_{self._file_counter}.rows")
        staged = StagedFile(
            path, self._n_fields, node_id, self._meter, self._model
        )
        self._files[node_id] = staged
        return staged

    def add_drop_listener(self,
                          listener: Callable[[StagedFile], None]) -> None:
        """Register a callback fired whenever a staged file is dropped."""
        self._drop_listeners.append(listener)

    def _notify_dropped(self, staged: StagedFile) -> None:
        for listener in self._drop_listeners:
            listener(staged)

    def abandon_file(self, node_id: Any) -> None:
        """Drop a file opened this scan (e.g. budget raced); deletes it."""
        staged = self._files.pop(node_id, None)
        if staged is not None:
            staged.delete()
            self._notify_dropped(staged)

    def reserve_memory(self, node_id: Any, n_rows: int) -> bool:
        """Try to reserve budget for ``n_rows`` of ``node_id``'s data."""
        nbytes = self.memory_bytes_for(n_rows)
        return self._budget.try_reserve(_data_tag(node_id), nbytes)

    def commit_memory(self, node_id: Any, rows: list[Any]) -> None:
        """Install rows collected during a scan; charges load cost."""
        if node_id in self._memory:
            raise StagingError(f"{node_id!r} already staged in memory")
        self._budget.resize(
            _data_tag(node_id), self.memory_bytes_for(len(rows))
        )
        self._memory[node_id] = rows
        self._meter.charge(
            "memory_load",
            self._model.memory_load_row * len(rows),
            events=len(rows),
        )

    def cancel_memory_reservation(self, node_id: Any) -> None:
        """Release a reservation that was never committed."""
        self._budget.release(_data_tag(node_id))

    def drop_memory(self, node_id: Any) -> None:
        """Evict a node's in-memory data set."""
        self._memory.pop(node_id, None)
        self._memory_columnar.pop(node_id, None)
        self._budget.release(_data_tag(node_id))

    def drop_file(self, node_id: Any) -> None:
        """Delete a node's staging file."""
        staged = self._files.pop(node_id, None)
        if staged is not None:
            staged.delete()
            self._notify_dropped(staged)

    # -- lifecycle ------------------------------------------------------------

    def garbage_collect(self, pending_requests: Iterable[Any]) -> list[Any]:
        """Drop staged data no pending request resolves to.

        Called at scheduling time, when the client has queued every
        child of the nodes it consumed (Fig. 3's loop guarantees this),
        so "no pending request resolves here" means the subtree is
        either finished or better served by a nearer staged set.
        Returns the node ids dropped.
        """
        needed: set[tuple[DataLocation, Any]] = set()
        for request in pending_requests:
            location, source = self.resolve(request)
            if location is not DataLocation.SERVER:
                needed.add((location, source))
        dropped: list[Any] = []
        for node_id in list(self._memory):
            if (DataLocation.MEMORY, node_id) not in needed:
                self.drop_memory(node_id)
                dropped.append(node_id)
        for node_id in list(self._files):
            if (DataLocation.FILE, node_id) not in needed:
                self.drop_file(node_id)
                dropped.append(node_id)
        return dropped

    def evict_memory_except(self, keep_node: Any) -> int:
        """Evict all in-memory data sets except ``keep_node``.

        Last-resort path when CC tables for the next batch cannot be
        reserved at all; returns bytes freed.
        """
        freed = 0
        for node_id in list(self._memory):
            if node_id != keep_node:
                freed += self._budget.reserved(_data_tag(node_id))
                self.drop_memory(node_id)
        return freed

    def close(self) -> None:
        """Delete every staged file and release memory reservations."""
        for node_id in list(self._files):
            self.drop_file(node_id)
        for node_id in list(self._memory):
            self.drop_memory(node_id)
        self._memory_columnar.clear()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def __repr__(self) -> str:
        return (
            f"StagingManager(files={len(self._files)}, "
            f"memory_sets={len(self._memory)})"
        )


def _data_tag(node_id: Any) -> str:
    """Budget reservation tag for a node's staged in-memory data."""
    return f"data:{node_id}"
