"""Data staging: server → middleware file system → middleware memory.

As the tree grows, the relevant data set shrinks monotonically, so the
middleware copies ("stages") data downwards (Section 4.1.2):

* **FILE** — a node's rows are written to a middleware staging file;
  scanning it is much cheaper than a server scan, but still reads the
  *whole* file.  Files can be *split* (Section 4.3.2): when the active
  nodes being served cover a small fraction of a file, fresh per-node
  files are written so future scans read less.
* **MEMORY** — a node's rows are loaded into middleware memory,
  accounted against the same :class:`~repro.common.memory.MemoryBudget`
  as CC tables; scans become nearly free.

Staging files are real files: fixed-width little-endian int32 records
under a temporary directory, one file per staged node.
"""

from __future__ import annotations

import enum
import os
import struct
import tempfile

from ..common.errors import StagingError


class DataLocation(enum.IntEnum):
    """Where a node's data currently lives (ordered worst to best)."""

    SERVER = 0
    FILE = 1
    MEMORY = 2

    @property
    def tag(self):
        """The paper's single-letter node prefix (Fig. 1): S / I / L."""
        return {self.SERVER: "S", self.FILE: "I", self.MEMORY: "L"}[self]


class StagedFile:
    """One middleware staging file holding a node's rows.

    I/O is blocked: writes accumulate packed records in a buffer that
    is flushed every :data:`BLOCK_ROWS` rows (and at :meth:`seal`), and
    :meth:`scan` reads multi-row blocks decoded with
    ``struct.iter_unpack``.  Cost metering is unchanged — the simulated
    per-row file I/O charges are accumulated by row count exactly as
    the record-at-a-time implementation charged them.
    """

    #: Rows per physical I/O block (writes buffer up to this many
    #: packed records; reads fetch this many records per ``read``).
    BLOCK_ROWS = 1024

    def __init__(self, path, n_fields, owner_node, meter, model):
        self._path = path
        self._struct = struct.Struct(f"<{n_fields}i")
        self.owner_node = owner_node
        self._meter = meter
        self._model = model
        self._row_count = 0
        self._handle = open(path, "wb")
        self._writing = True
        self._buffer = []

    @property
    def path(self):
        return self._path

    @property
    def row_count(self):
        return self._row_count

    def append(self, row):
        """Buffer one row for writing."""
        if not self._writing:
            raise StagingError("staged file is already sealed")
        self._buffer.append(self._struct.pack(*row))
        self._row_count += 1
        if len(self._buffer) >= self.BLOCK_ROWS:
            self._flush()

    def append_rows(self, rows):
        """Buffer many rows at once (one flush check per block)."""
        if not self._writing:
            raise StagingError("staged file is already sealed")
        pack = self._struct.pack
        self._buffer.extend(pack(*row) for row in rows)
        self._row_count += len(rows)
        if len(self._buffer) >= self.BLOCK_ROWS:
            self._flush()

    def _flush(self):
        if self._buffer:
            self._handle.write(b"".join(self._buffer))
            self._buffer.clear()

    def seal(self):
        """Finish writing and charge the accumulated write cost."""
        if self._writing:
            self._flush()
            self._handle.close()
            self._writing = False
            self._meter.charge(
                "file_write",
                self._model.file_write_row * self._row_count,
                events=self._row_count,
            )

    def scan(self):
        """Yield all rows; charges per-row file-read cost."""
        if self._writing:
            raise StagingError("seal the file before scanning it")
        record = self._struct
        block = record.size * self.BLOCK_ROWS
        rows_read = 0
        try:
            with open(self._path, "rb") as handle:
                while True:
                    chunk = handle.read(block)
                    usable = len(chunk) - len(chunk) % record.size
                    if not usable:
                        break
                    for row in record.iter_unpack(chunk[:usable]):
                        rows_read += 1
                        yield row
                    if len(chunk) < block:
                        break
        finally:
            self._meter.charge(
                "file_read",
                self._model.file_row_io * rows_read,
                events=rows_read,
            )

    def delete(self):
        """Remove the file from disk."""
        if self._writing:
            self._buffer.clear()
            self._handle.close()
            self._writing = False
        if os.path.exists(self._path):
            os.remove(self._path)

    def __repr__(self):
        return (
            f"StagedFile(owner={self.owner_node!r}, rows={self._row_count})"
        )


class StagingManager:
    """Tracks which nodes have staged data and where."""

    def __init__(self, spec, meter, model, budget, staging_dir=None,
                 file_budget_bytes=None):
        self._spec = spec
        self._meter = meter
        self._model = model
        self._budget = budget
        self._file_budget = file_budget_bytes
        self._files = {}  # node_id -> StagedFile
        self._memory = {}  # node_id -> list of rows
        self._n_fields = spec.n_attributes + 1
        self._row_bytes = spec.row_bytes
        self._file_counter = 0
        if staging_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-stage-")
            self._dir = self._tempdir.name
        else:
            self._tempdir = None
            self._dir = staging_dir
            os.makedirs(staging_dir, exist_ok=True)

    # -- budgets -----------------------------------------------------------

    @property
    def file_bytes_used(self):
        """Simulated bytes currently staged in files."""
        return sum(f.row_count * self._row_bytes for f in self._files.values())

    def file_space_for(self, n_rows):
        """True if a file of ``n_rows`` fits the file-space budget."""
        if self._file_budget is None:
            return True
        needed = n_rows * self._row_bytes
        return self.file_bytes_used + needed <= self._file_budget

    def memory_bytes_for(self, n_rows):
        """Simulated bytes to hold ``n_rows`` in middleware memory."""
        return n_rows * self._row_bytes

    # -- lookup ------------------------------------------------------------

    def resolve(self, request):
        """Best data source for ``request``: ``(location, source_node)``.

        Rule 1 ordering: an in-memory ancestor beats any file, a file
        beats the server.  Among several staged ancestors of the same
        tier, the *nearest* (deepest) one wins — its data set is the
        smallest superset of the node's.
        """
        for node_id in reversed(request.lineage):
            if node_id in self._memory:
                return DataLocation.MEMORY, node_id
        for node_id in reversed(request.lineage):
            if node_id in self._files:
                return DataLocation.FILE, node_id
        return DataLocation.SERVER, None

    def memory_rows(self, node_id):
        try:
            return self._memory[node_id]
        except KeyError:
            raise StagingError(f"no memory data staged for {node_id!r}") from None

    def file_for(self, node_id):
        try:
            return self._files[node_id]
        except KeyError:
            raise StagingError(f"no file staged for {node_id!r}") from None

    def memory_nodes(self):
        return sorted(self._memory, key=str)

    def file_nodes(self):
        return sorted(self._files, key=str)

    # -- staging writes ------------------------------------------------------

    def open_file(self, node_id):
        """Create (and register) a staging file for ``node_id``."""
        if node_id in self._files:
            raise StagingError(f"{node_id!r} already has a staged file")
        self._file_counter += 1
        path = os.path.join(self._dir, f"stage_{self._file_counter}.rows")
        staged = StagedFile(
            path, self._n_fields, node_id, self._meter, self._model
        )
        self._files[node_id] = staged
        return staged

    def abandon_file(self, node_id):
        """Drop a file opened this scan (e.g. budget raced); deletes it."""
        staged = self._files.pop(node_id, None)
        if staged is not None:
            staged.delete()

    def reserve_memory(self, node_id, n_rows):
        """Try to reserve budget for ``n_rows`` of ``node_id``'s data."""
        nbytes = self.memory_bytes_for(n_rows)
        return self._budget.try_reserve(_data_tag(node_id), nbytes)

    def commit_memory(self, node_id, rows):
        """Install rows collected during a scan; charges load cost."""
        if node_id in self._memory:
            raise StagingError(f"{node_id!r} already staged in memory")
        self._budget.resize(
            _data_tag(node_id), self.memory_bytes_for(len(rows))
        )
        self._memory[node_id] = rows
        self._meter.charge(
            "memory_load",
            self._model.memory_load_row * len(rows),
            events=len(rows),
        )

    def cancel_memory_reservation(self, node_id):
        """Release a reservation that was never committed."""
        self._budget.release(_data_tag(node_id))

    def drop_memory(self, node_id):
        """Evict a node's in-memory data set."""
        self._memory.pop(node_id, None)
        self._budget.release(_data_tag(node_id))

    def drop_file(self, node_id):
        """Delete a node's staging file."""
        staged = self._files.pop(node_id, None)
        if staged is not None:
            staged.delete()

    # -- lifecycle ------------------------------------------------------------

    def garbage_collect(self, pending_requests):
        """Drop staged data no pending request resolves to.

        Called at scheduling time, when the client has queued every
        child of the nodes it consumed (Fig. 3's loop guarantees this),
        so "no pending request resolves here" means the subtree is
        either finished or better served by a nearer staged set.
        Returns the node ids dropped.
        """
        needed = set()
        for request in pending_requests:
            location, source = self.resolve(request)
            if location is not DataLocation.SERVER:
                needed.add((location, source))
        dropped = []
        for node_id in list(self._memory):
            if (DataLocation.MEMORY, node_id) not in needed:
                self.drop_memory(node_id)
                dropped.append(node_id)
        for node_id in list(self._files):
            if (DataLocation.FILE, node_id) not in needed:
                self.drop_file(node_id)
                dropped.append(node_id)
        return dropped

    def evict_memory_except(self, keep_node):
        """Evict all in-memory data sets except ``keep_node``.

        Last-resort path when CC tables for the next batch cannot be
        reserved at all; returns bytes freed.
        """
        freed = 0
        for node_id in list(self._memory):
            if node_id != keep_node:
                freed += self._budget.reserved(_data_tag(node_id))
                self.drop_memory(node_id)
        return freed

    def close(self):
        """Delete every staged file and release memory reservations."""
        for node_id in list(self._files):
            self.drop_file(node_id)
        for node_id in list(self._memory):
            self.drop_memory(node_id)
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def __repr__(self):
        return (
            f"StagingManager(files={len(self._files)}, "
            f"memory_sets={len(self._memory)})"
        )


def _data_tag(node_id):
    """Budget reservation tag for a node's staged in-memory data."""
    return f"data:{node_id}"
