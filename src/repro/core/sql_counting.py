"""SQL-based CC-table construction (paper Section 2.3).

Builds the UNION-of-GROUP-BYs statement that computes one node's CC
table entirely at the server::

    SELECT 'A1' AS attr_name, A1 AS value, class, COUNT(*) ...
    FROM data WHERE <node condition> GROUP BY class, A1
    UNION ALL ...

This path is used two ways:

* as the middleware's **lazy fallback** when a scan runs out of CC
  memory (Section 4.1.1), and
* as the **straw-man baseline** of Section 2.3 / Fig. 7, issuing one
  such statement per active node with no batching — the configuration
  the paper shows collapsing beyond a few MB.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..sqlengine.ast_nodes import CountStar, Select, SelectItem, UnionAll
from ..sqlengine.expr import ColumnRef, Literal
from .cc_table import CCTable

#: Result column names of a CC query, in order.
CC_COLUMNS = ("attr_name", "value", "class_label", "cnt")


def cc_statement(table_name: str, attributes: Iterable[str],
                 class_name: str,
                 predicate: Any | None = None) -> Any:
    """The UNION statement computing a node's CC table.

    One GROUP BY branch per attribute; a single attribute degenerates
    to a plain grouped SELECT.
    """
    names = list(attributes)
    if not names:
        raise ValueError("a CC query needs at least one attribute")
    branches = []
    for attribute in names:
        items = [
            SelectItem(Literal(attribute), "attr_name"),
            SelectItem(ColumnRef(attribute), "value"),
            SelectItem(ColumnRef(class_name), "class_label"),
            SelectItem(CountStar(), "cnt"),
        ]
        branches.append(
            Select(
                items,
                table_name,
                where=predicate,
                group_by=[class_name, attribute],
            )
        )
    if len(branches) == 1:
        return branches[0]
    return UnionAll(branches)


def counts_via_sql(server: Any, table_name: str, spec: Any,
                   attributes: Sequence[str],
                   predicate: Any | None = None) -> CCTable:
    """Execute the CC query and assemble the :class:`CCTable`.

    The row total is recovered from the per-attribute sums (every
    record contributes exactly one group row increment per attribute),
    which :meth:`CCTable.set_records` cross-validates.
    """
    attributes = tuple(attributes)
    statement = cc_statement(
        table_name, attributes, spec.class_name, predicate
    )
    result = server.execute(statement)
    cc = CCTable(attributes, spec.n_classes)
    first_attribute_total = 0
    for attr_name, value, class_label, count in result:
        cc.add_counts(attr_name, value, class_label, count)
        if attr_name == attributes[0]:
            first_attribute_total += count
    cc.set_records(first_attribute_total)
    return cc
