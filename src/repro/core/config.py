"""Middleware configuration.

One :class:`MiddlewareConfig` captures every knob the paper varies in
its experiments: the memory budget, whether staging to files and/or
memory is enabled (the application "can customize staging... completely
disabled or restricted to only caching in middleware files... or to
only memory caching"), the file-split threshold of Section 4.3.2, the
filter push-down of Section 4.3.1, and the server-access strategy of
Section 4.3.3.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from ..common.errors import MiddlewareError

#: Server-access strategy names (Section 4.3.3); "scan" is the default
#: plain filtered cursor the paper's system uses; "auto" consults the
#: engine's cost-based access-path planner per scan.
AUX_STRATEGIES = ("scan", "temp_table", "tid_join", "keyset", "auto")

#: Worker-pool kinds for the parallel scan executor.  Threads are the
#: default (cheap, shares the routing kernel in place); the process
#: pool sidesteps the GIL for CPU-bound routing at the price of
#: pickling partitions and partial CC tables across the boundary.
SCAN_POOLS = ("thread", "process")


def _default_scan_workers() -> int:
    """Default scan worker count: ``$REPRO_SCAN_WORKERS``, else 1.

    The environment override lets a whole test or CI run opt into the
    parallel scan executor without touching any call site (the CI
    matrix runs the tier-1 suite once serial and once with 4 workers).
    """
    raw = os.environ.get("REPRO_SCAN_WORKERS", "").strip()
    if not raw:
        return 1
    try:
        return int(raw)
    except ValueError:
        raise MiddlewareError(
            f"REPRO_SCAN_WORKERS must be an integer, got {raw!r}"
        ) from None


@dataclass(frozen=True)
class MiddlewareConfig:
    """Knobs of the scalable classification middleware."""

    #: Middleware memory budget in simulated bytes (CC tables + staged
    #: in-memory data share this pool).
    memory_bytes: int = 64 * 1024
    #: Allow staging data to middleware files.
    file_staging: bool = True
    #: Allow staging data into middleware memory.
    memory_staging: bool = True
    #: File-split trigger (Section 4.3.2): a file scan whose active
    #: nodes cover a fraction <= this threshold writes fresh per-node
    #: files.  1.0 = a new file per node; 0.0 = one singleton file.
    file_split_threshold: float = 0.5
    #: Cap on total staged-file bytes (None = unlimited local disk).
    file_budget_bytes: int | None = None
    #: Push the batch filter expression into server scans (§4.3.1).
    push_filters: bool = True
    #: Server-access strategy (§4.3.3): one of :data:`AUX_STRATEGIES`.
    aux_strategy: str = "scan"
    #: Relevant-fraction threshold below which the temp-table /
    #: TID-join / keyset strategies build their structure (§4.3.3
    #: observes gains only appear "around 10%").
    aux_build_threshold: float = 0.1
    #: When True, building the auxiliary structure is not charged —
    #: the paper's "idealized situation on the server by neglecting
    #: the cost of creating index structures" (§5.2.5).
    aux_free_build: bool = False
    #: Directory for staging files (None = private temp directory).
    staging_dir: str | None = None
    #: Route rows through the compiled attribute-indexed scan kernel.
    #: False selects the reference per-row matcher loop — the two are
    #: equivalence-tested, so this is an A/B switch, not a feature gate.
    scan_kernel: bool = True
    #: Rows per scan chunk: staging writes and memory capture are
    #: buffered and flushed at this granularity.
    scan_chunk_rows: int = 1024
    #: Worker tasks per scan.  1 (the default, overridable through
    #: ``$REPRO_SCAN_WORKERS``) keeps the serial loops; >1 partitions
    #: the row source and counts private per-node CC partials in a
    #: worker pool, merging them afterwards — CC tables are additive,
    #: so partial counts over disjoint partitions merge exactly.
    scan_workers: int = field(default_factory=_default_scan_workers)
    #: Worker-pool kind for the parallel executor: one of
    #: :data:`SCAN_POOLS`.  "thread" is the low-overhead default;
    #: "process" pays serialization to escape the GIL on CPU-bound
    #: routing workloads.
    scan_pool: str = "thread"
    #: Scans over fewer source rows than this stay serial even when
    #: ``scan_workers`` > 1 — pool startup and merge overhead dominate
    #: tiny scans.
    scan_parallel_min_rows: int = 2048
    #: Reuse one :class:`~repro.core.scan_pool.ScanWorkerPool` across
    #: every parallel scan of a middleware session (created lazily on
    #: the first such scan, torn down by ``Middleware.close()``).
    #: False rebuilds a pool per scan — the cold-start baseline the
    #: warm-pool benchmark compares against.
    scan_pool_reuse: bool = True
    #: SERVER-scan prefetch depth: a bounded producer thread pulls up
    #: to this many row partitions ahead of the workers, overlapping
    #: cursor row production with counting.  0 keeps the coordinator's
    #: inline pull-then-submit loop.  Meter charges still accrue once
    #: per row, so simulated costs are prefetch-independent.
    scan_prefetch_partitions: int = 2
    #: Give each §4.3.2 split-output file its own writer thread and
    #: bounded queue (multi-file staged scans only).  False funnels all
    #: staging output through the single pipelined writer thread.
    scan_split_writers: bool = True
    #: Count parallel scans over array-backed columnar partitions with
    #: the vectorized kernel (requires numpy; falls back to row tuples
    #: when numpy is missing or the batch exceeds the mask width).
    #: False forces the row-tuple parallel path — the equivalence
    #: baseline the columnar path is tested against.
    scan_columnar: bool = True
    #: Ship columnar partitions to *process* workers through
    #: ``multiprocessing.shared_memory`` segments (one copy; only the
    #: segment handle is pickled).  False — or an unavailable
    #: shared-memory implementation — pickles the column arrays
    #: instead.  Thread pools never ship (shared address space).
    scan_shared_memory: bool = True
    #: Adapt partition sizing (and SERVER-scan prefetch depth) from
    #: observed per-partition worker timings: partitions that are all
    #: dispatch overhead coarsen the next scan's sizing, straggling
    #: partitions refine it.  False pins the static ~2-per-worker
    #: policy.
    scan_adaptive_partitions: bool = True
    #: Cache full-source columnar encodings keyed by table version
    #: ("encode once, scan every level"): a parallel scan of an
    #: unchanged source reuses the encoding instead of re-encoding it,
    #: and with a process pool reuses its persistent shared-memory
    #: segment instead of re-shipping.  False streams every scan — the
    #: cold baseline the cache benchmark compares against.
    scan_columnar_cache: bool = True
    #: Byte budget for resident cached encodings (real process bytes,
    #: accounted from the flat segment layout like the staging budgets;
    #: LRU-evicted).  An encoding that cannot fit is used once and
    #: dropped; 0 disables caching outright.
    scan_cache_bytes: int = 128 * 1024 * 1024
    #: Keep each cached encoding's shared-memory segment alive across
    #: scans (process pools only): workers re-attach by generation
    #: instead of receiving a fresh copy per scan.  False ships the
    #: cached encoding per scan as ordinary pickled slices.
    scan_persistent_shm: bool = True
    #: Let ``aux_strategy="auto"`` consult the engine's cost-based
    #: access-path planner, adding secondary-index probes to its
    #: candidate set.  False removes the index candidate — the blind
    #: baseline the planner A/B benchmark compares against.  Ignored
    #: by the other (fixed) strategies.
    scan_use_planner: bool = True

    def __post_init__(self) -> None:
        if self.memory_bytes < 0:
            raise MiddlewareError("memory_bytes must be non-negative")
        if not 0.0 <= self.file_split_threshold <= 1.0:
            raise MiddlewareError(
                "file_split_threshold must be within [0, 1]"
            )
        if self.aux_strategy not in AUX_STRATEGIES:
            raise MiddlewareError(
                f"aux_strategy must be one of {AUX_STRATEGIES}"
            )
        if not 0.0 < self.aux_build_threshold <= 1.0:
            raise MiddlewareError(
                "aux_build_threshold must be within (0, 1]"
            )
        if (self.file_budget_bytes is not None
                and self.file_budget_bytes < 0):
            raise MiddlewareError("file_budget_bytes must be non-negative")
        if self.scan_chunk_rows < 1:
            raise MiddlewareError("scan_chunk_rows must be positive")
        if self.scan_workers < 1:
            raise MiddlewareError("scan_workers must be at least 1")
        if self.scan_pool not in SCAN_POOLS:
            raise MiddlewareError(
                f"scan_pool must be one of {SCAN_POOLS}"
            )
        if self.scan_parallel_min_rows < 0:
            raise MiddlewareError(
                "scan_parallel_min_rows must be non-negative"
            )
        if self.scan_prefetch_partitions < 0:
            raise MiddlewareError(
                "scan_prefetch_partitions must be non-negative"
            )
        if self.scan_cache_bytes < 0:
            raise MiddlewareError("scan_cache_bytes must be non-negative")

    @classmethod
    def no_staging(cls, memory_bytes: int,
                   **overrides: Any) -> MiddlewareConfig:
        """Staging completely disabled (every scan hits the server)."""
        return cls(
            memory_bytes=memory_bytes,
            file_staging=False,
            memory_staging=False,
            **overrides,
        )

    @classmethod
    def memory_only(cls, memory_bytes: int,
                    **overrides: Any) -> MiddlewareConfig:
        """Only memory caching (no local disk available)."""
        return cls(
            memory_bytes=memory_bytes,
            file_staging=False,
            memory_staging=True,
            **overrides,
        )

    @classmethod
    def file_only(cls, memory_bytes: int, split_threshold: float = 0.5,
                  **overrides: Any) -> MiddlewareConfig:
        """Only file caching (counts memory, no data in memory)."""
        return cls(
            memory_bytes=memory_bytes,
            file_staging=True,
            memory_staging=False,
            file_split_threshold=split_threshold,
            **overrides,
        )
