"""The client/middleware interface of Figure 3: request and result queues.

The client queues one :class:`CountsRequest` per active tree node; the
middleware schedules batches, fulfils them, and posts
:class:`CountsResult` objects.  Requests carry everything the scheduler
needs — lineage (for staging locality, Rule 2), the exact data size
(known from the parent's CC table), and the estimated CC size — so the
middleware never has to inspect client data structures.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Sequence, Union

from ..common.errors import MiddlewareError
from ..sqlengine.expr import TRUE
from .filters import path_predicate

#: Opaque node identifier; the decision-tree client uses ints,
#: hand-written drivers and tests use strings.
NodeId = Union[int, str]


class CountsRequest:
    """A request to build the CC table for one active node."""

    __slots__ = (
        "node_id",
        "lineage",
        "conditions",
        "attributes",
        "n_rows",
        "est_cc_pairs",
        "predicate",
    )

    def __init__(self, node_id: NodeId, lineage: Sequence[NodeId],
                 conditions: Iterable[Any],
                 attributes: Iterable[str], n_rows: int,
                 est_cc_pairs: int):
        """
        :param node_id: opaque, hashable node identifier.
        :param lineage: node ids from the root down to *this node
            inclusive*; staging locality checks test membership in it.
        :param conditions: the node's path conditions
            (:class:`~repro.core.filters.PathCondition` sequence).
        :param attributes: attribute names still present at the node.
        :param n_rows: exact data size |n| (from the parent's CC table).
        :param est_cc_pairs: estimated (attribute, value) pair count of
            the node's CC table (Section 4.2.1).
        """
        if not lineage or lineage[-1] != node_id:
            raise MiddlewareError("lineage must end with the node itself")
        if n_rows < 0:
            raise MiddlewareError("n_rows must be non-negative")
        if est_cc_pairs < 0:
            raise MiddlewareError("est_cc_pairs must be non-negative")
        self.node_id = node_id
        self.lineage = tuple(lineage)
        self.conditions = tuple(conditions)
        self.attributes = tuple(attributes)
        self.n_rows = int(n_rows)
        self.est_cc_pairs = int(est_cc_pairs)
        self.predicate = path_predicate(self.conditions)

    @property
    def is_root(self) -> bool:
        return self.predicate is TRUE or len(self.lineage) == 1

    def descends_from(self, node_id: NodeId) -> bool:
        """True if ``node_id`` is this node or one of its ancestors."""
        return node_id in self.lineage

    def __repr__(self) -> str:
        return (
            f"CountsRequest(node={self.node_id!r}, rows={self.n_rows}, "
            f"est_pairs={self.est_cc_pairs})"
        )


class CountsResult:
    """A fulfilled request: the node's CC table plus provenance."""

    __slots__ = ("node_id", "cc", "source", "used_sql_fallback")

    def __init__(self, node_id: NodeId, cc: Any, source: Any,
                 used_sql_fallback: bool = False):
        self.node_id = node_id
        self.cc = cc
        #: Where the data was read from: a DataLocation value.
        self.source = source
        #: True when the scan ran out of CC memory and this node was
        #: recounted with the lazy SQL path (Section 4.1.1).
        self.used_sql_fallback = used_sql_fallback

    def __repr__(self) -> str:
        return (
            f"CountsResult(node={self.node_id!r}, records={self.cc.records}, "
            f"source={self.source}, fallback={self.used_sql_fallback})"
        )


class RequestQueue:
    """FIFO of pending :class:`CountsRequest` with membership checks."""

    def __init__(self) -> None:
        self._queue: deque[CountsRequest] = deque()
        self._ids: set[NodeId] = set()

    def put(self, request: CountsRequest) -> None:
        if request.node_id in self._ids:
            raise MiddlewareError(
                f"node {request.node_id!r} already has a pending request"
            )
        self._queue.append(request)
        self._ids.add(request.node_id)

    def remove(self, requests: Iterable[CountsRequest]) -> None:
        """Remove specific requests (the scheduled batch)."""
        batch_ids = {r.node_id for r in requests}
        missing = batch_ids - self._ids
        if missing:
            raise MiddlewareError(f"requests not pending: {sorted(missing)}")
        self._queue = deque(
            r for r in self._queue if r.node_id not in batch_ids
        )
        self._ids -= batch_ids

    def pending(self) -> list[CountsRequest]:
        """Snapshot of pending requests in arrival order."""
        return list(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)
