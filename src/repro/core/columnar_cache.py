"""Table-version columnar scan cache ("encode once, scan every level").

A SERVER fit touches the same table once per tree level: every batch
the scheduler emits re-reads the (unchanged) data table, and the
columnar parallel path re-encoded it into typed column arrays — and,
for process pools, re-copied it into a fresh shared-memory segment —
on every single scan.  Profiles showed encode + ship dominating warm
multi-level fits.

This module caches the encoding keyed by *data version*:

* :class:`ColumnarScanPlan` — what one cacheable scan needs: a cache
  key (``("table", name, version)`` for plain scans, structure-specific
  keys for the §4.3.3 auxiliary strategies, ``("file", uid)`` for
  staged files), an unmetered encoder for misses, and the explicit
  meter charges that keep a cache-served scan cost-identical to the
  streaming scan it replaces (see ``docs/cost_model.md``).
* :class:`ColumnarScanCache` — an LRU of full-table
  :class:`~repro.sqlengine.columnar.ColumnarPartition` encodings under
  a byte budget (``config.scan_cache_bytes``), accounted from the flat
  shared-memory layout size.  With a process pool the cache also owns
  one *persistent* shm segment per entry (shipped once, witnessed with
  a ``persistent`` marker) and hands scans a generation-counted
  :class:`~repro.core.shm.ShmSegmentRef` so workers re-attach instead
  of receiving a fresh copy per scan.

Invalidation is by construction, not by callbacks: table mutations bump
:attr:`~repro.sqlengine.heap.HeapTable.version`, so a stale entry can
never be *hit* — admitting the new version drops the old one.  Staged
files are immutable once sealed but their uids can be dropped and the
path reused, so :class:`~repro.core.staging.StagingManager` fires drop
listeners that evict ``("file", uid)`` entries eagerly.

Everything here runs on the coordinating scan thread (one scan at a
time per middleware session), so no lock is needed — mirroring
:class:`~repro.core.shm.ShmShipper`.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from ..sqlengine.columnar import ColumnarPartition, np
from .shm import ShmSegmentRef, ShmShipper, partition_from_handle

#: Pre-encode admission estimate: one int64 cell per attribute + class.
_BYTES_PER_CELL = 8


@dataclass
class ColumnarScanPlan:
    """One cacheable scan: key, encoder, and equivalent meter charges.

    ``encode`` materialises the *superset* the scan counts over (the
    full table, the auxiliary structure's rows, or the staged file) as
    one columnar partition.  When ``charge_on_miss`` is True the
    encoder is unmetered (it bypasses the cursor layer) and the caller
    must apply ``charge_scan``/``charge_rows`` on hits *and* misses;
    when False the encoder itself meters (staged-file block scans), so
    the explicit charges apply on hits only.

    ``filter_expr`` is the pushed batch filter the workers apply as a
    keep mask (None = count every row); per-scan filters deliberately
    stay *out* of the cache key so every level of a fit shares one
    encoding.
    """

    #: Cache identity; first two elements are the source prefix
    #: (``("table", name)`` / ``("file", uid)`` / ...), used to drop
    #: stale versions of the same source on admit.
    key: tuple[Any, ...]
    #: Pre-encode row estimate for the admission gate.
    n_rows: int
    #: Materialise the full superset encoding (miss path).
    encode: Callable[[], ColumnarPartition]
    #: Fixed per-scan charges (cursor open, page I/O, keyset/join fees).
    charge_scan: Callable[[], None]
    #: Per-qualifying-row charges (transfer), applied at scan end.
    charge_rows: Callable[[int], None]
    #: Worker-side keep filter (None/TRUE = keep everything).
    filter_expr: Any = None
    #: False when ``encode`` meters its own reads (staged files).
    charge_on_miss: bool = True


class _CacheEntry:
    """One resident encoding (plus its persistent segment, if shipped)."""

    __slots__ = ("key", "partition", "ref", "nbytes", "encode_seconds",
                 "ship_seconds")

    def __init__(self, key: tuple[Any, ...],
                 partition: Optional[ColumnarPartition],
                 nbytes: int) -> None:
        self.key = key
        self.partition = partition
        #: Generation-counted persistent-segment reference, or None
        #: when the entry was never shipped (thread pools, pickled
        #: process fallback, transient entries).
        self.ref: Optional[ShmSegmentRef] = None
        self.nbytes = nbytes
        #: Wall-clock cost of building this entry, reported as
        #: ``encode_seconds_saved`` / ``ship_seconds_saved`` on hits.
        self.encode_seconds = 0.0
        self.ship_seconds = 0.0


class ColumnarScanCache:
    """LRU of full-table columnar encodings under a byte budget."""

    def __init__(self, budget_bytes: int) -> None:
        self._budget = max(0, budget_bytes)
        self._entries: "OrderedDict[tuple[Any, ...], _CacheEntry]" = (
            OrderedDict()
        )
        self._resident = 0
        self._shipper: Optional[ShmShipper] = None
        #: Monotone per-cache ship counter; workers cache one attached
        #: segment and re-attach only when the generation moves.
        self._generation = 0
        self._closed = False
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # -- observability -----------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Bytes of encodings currently held (= segment bytes when shipped)."""
        return self._resident

    @property
    def resident_entries(self) -> int:
        return len(self._entries)

    @property
    def live_segments(self) -> int:
        """Persistent shm segments currently alive."""
        return 0 if self._shipper is None else self._shipper.live_segments

    # -- admission ---------------------------------------------------------

    def admissible(self, plan: ColumnarScanPlan, n_columns: int) -> bool:
        """Pre-encode gate: would this plan's encoding plausibly fit?

        The estimate (rows × columns × 8) deliberately ignores null
        masks and dictionary tuples; a plan that passes the gate but
        encodes larger than the budget is still used — once,
        transiently — by :meth:`admit`.
        """
        if self._closed or self._budget <= 0:
            return False
        return plan.n_rows * n_columns * _BYTES_PER_CELL <= self._budget

    def lookup(self, key: tuple[Any, ...]) -> Optional[_CacheEntry]:
        """The resident entry for ``key`` (bumps LRU), or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def admit(self, key: tuple[Any, ...], partition: ColumnarPartition,
              ship: bool) -> _CacheEntry:
        """Install a freshly encoded partition; returns its entry.

        Admitting a new version of a source first drops any entry with
        the same two-element key prefix (the stale version could never
        be hit again, but would squat on the budget), then evicts LRU
        entries until the newcomer fits.  An encoding larger than the
        whole budget is returned as a *transient* entry — the caller
        uses it for this scan and it is never stored or shipped.

        With ``ship`` True the partition is copied once into a
        persistent shared-memory segment and the entry's resident
        partition is rebuilt as a zero-copy view over that segment, so
        the coordinator and the segment share one physical copy.
        """
        nbytes = partition.nbytes
        entry = _CacheEntry(key, partition, nbytes)
        if self._closed or nbytes > self._budget:
            return entry
        self.invalidate(key[:2])
        while self._entries and self._resident + nbytes > self._budget:
            self._evict_lru()
        if ship:
            started = time.perf_counter()
            shipper = self._shipper
            if shipper is None:
                shipper = self._shipper = ShmShipper()
            handle = shipper.ship(partition, persistent=True)
            self._generation += 1
            entry.ref = ShmSegmentRef(self._generation, handle)
            entry.partition = partition_from_handle(
                shipper.segment(handle.segment), handle
            )
            entry.ship_seconds = time.perf_counter() - started
        self._entries[key] = entry
        self._resident += nbytes
        return entry

    # -- invalidation ------------------------------------------------------

    def invalidate(self, prefix: tuple[Any, ...]) -> int:
        """Drop every entry whose key starts with ``prefix``."""
        width = len(prefix)
        stale = [k for k in self._entries if k[:width] == prefix]
        for k in stale:
            self._release(self._entries.pop(k))
            self.invalidations += 1
        return len(stale)

    def on_file_dropped(self, staged: Any) -> None:
        """Staging drop listener: evict a deleted file's encoding."""
        self.invalidate(("file", staged.uid))

    def _evict_lru(self) -> None:
        _key, entry = self._entries.popitem(last=False)
        self._release(entry)
        self.evictions += 1

    def _release(self, entry: _CacheEntry) -> None:
        self._resident -= entry.nbytes
        ref = entry.ref
        # Drop the buffer views before releasing the backing segment —
        # release() tolerates (and unlinks through) lingering views,
        # but dropping ours first is the clean order.
        entry.partition = None
        entry.ref = None
        if ref is not None and self._shipper is not None:
            self._shipper.release(ref.handle.segment)

    def close(self) -> None:
        """Release every entry and persistent segment.  Idempotent."""
        self._closed = True
        while self._entries:
            _key, entry = self._entries.popitem(last=False)
            self._release(entry)
        if self._shipper is not None:
            self._shipper.close()
            self._shipper = None


# -- plan builders (shared by the access strategies and the executor) ------


#: meter parity with ForwardCursor.__init__ + ForwardCursor.rows
def plain_table_plan(server: Any, table: Any,
                     predicate: Any) -> ColumnarScanPlan:
    """Cacheable twin of a plain filtered forward-cursor scan.

    Charges exactly what :class:`~repro.sqlengine.cursors.ForwardCursor`
    charges — cursor open + per-page server I/O up front, per-row
    transfer for qualifying rows at the end — while encoding the full
    table from the unmetered heap iterator, so hits and misses are both
    cost-identical to the streaming scan.
    """
    meter = server.meter
    model = server.model

    def charge_scan() -> None:
        meter.charge("cursor", model.cursor_open)
        pages = table.pages_touched()
        meter.charge(
            "server_io", model.server_page_io * pages, events=pages
        )

    def charge_rows(n: int) -> None:
        meter.charge(
            "transfer", model.transfer_per_row * n, events=n
        )

    def encode() -> ColumnarPartition:
        return ColumnarPartition.from_rows(list(table.scan_rows()))

    return ColumnarScanPlan(
        key=("table", table.name, table.version),
        n_rows=table.row_count,
        encode=encode,
        charge_scan=charge_scan,
        charge_rows=charge_rows,
        filter_expr=predicate,
    )


def _tid_rows(table: Any, tids: Any) -> Iterator[Any]:
    """Live rows behind a TID list, skipping tombstones (unmetered)."""
    for tid in tids:
        row = table.fetch_or_none(tid)
        if row is not None:
            yield row


#: meter parity with TIDList.fetch
def tid_join_plan(server: Any, table: Any, tids: Any,
                  built_predicate: Any, predicate: Any) -> ColumnarScanPlan:
    """Cacheable twin of :meth:`~repro.sqlengine.tempstructs.TIDList.fetch`."""
    meter = server.meter
    model = server.model
    n_tids = len(tids)

    def charge_scan() -> None:
        meter.charge(
            "tid_join", model.tid_join_row * n_tids, events=n_tids
        )

    def charge_rows(n: int) -> None:
        meter.charge(
            "transfer", model.transfer_per_row * n, events=n
        )

    def encode() -> ColumnarPartition:
        return ColumnarPartition.from_rows(list(_tid_rows(table, tids)))

    return ColumnarScanPlan(
        key=("tids", table.name, table.version, built_predicate),
        n_rows=n_tids,
        encode=encode,
        charge_scan=charge_scan,
        charge_rows=charge_rows,
        filter_expr=predicate,
    )


#: meter parity with KeysetCursor.fetch
def keyset_fetch_plan(server: Any, table: Any, tids: Any,
                      built_predicate: Any,
                      predicate: Any) -> ColumnarScanPlan:
    """Cacheable twin of :meth:`~repro.sqlengine.cursors.KeysetCursor.fetch`."""
    meter = server.meter
    model = server.model
    n_tids = len(tids)

    def charge_scan() -> None:
        meter.charge(
            "keyset", model.keyset_row * n_tids, events=n_tids
        )

    def charge_rows(n: int) -> None:
        meter.charge(
            "transfer", model.transfer_per_row * n, events=n
        )

    def encode() -> ColumnarPartition:
        return ColumnarPartition.from_rows(list(_tid_rows(table, tids)))

    return ColumnarScanPlan(
        key=("keyset", table.name, table.version, built_predicate),
        n_rows=n_tids,
        encode=encode,
        charge_scan=charge_scan,
        charge_rows=charge_rows,
        filter_expr=predicate,
    )


#: meter parity with PlannedScanStrategy._index_rows
def index_fetch_plan(server: Any, table: Any, access_plan: Any,
                     predicate: Any) -> ColumnarScanPlan:
    """Cacheable twin of a planner-chosen index probe + TID fetch.

    ``access_plan`` is an :class:`~repro.sqlengine.planner.AccessPlan`
    whose chosen path is an index probe.  Charges exactly what the
    streaming index path charges — per-descent probes and per-TID row
    fetches up front, per-row transfer for qualifying rows at the end.
    The cache key carries the probe's identity (index name, probed
    values / interval), so different probes over the same table version
    encode separately, while the same split predicate re-probed across
    tree levels shares one encoding.
    """
    meter = server.meter
    model = server.model
    tids = access_plan.fetch_tids()
    descents = access_plan.index_descents
    n_tids = len(tids)

    def charge_scan() -> None:
        meter.charge(
            "index", model.index_probe * descents, events=descents
        )
        meter.charge(
            "index", model.index_row_fetch * n_tids, events=n_tids
        )

    def charge_rows(n: int) -> None:
        meter.charge(
            "transfer", model.transfer_per_row * n, events=n
        )

    def encode() -> ColumnarPartition:
        return ColumnarPartition.from_rows(list(_tid_rows(table, tids)))

    return ColumnarScanPlan(
        key=("ixfetch", table.name, table.version)
        + access_plan.cache_token(),
        n_rows=n_tids,
        encode=encode,
        charge_scan=charge_scan,
        charge_rows=charge_rows,
        filter_expr=predicate,
    )


def staged_file_plan(staged: Any) -> ColumnarScanPlan:
    """Cacheable twin of a staged-file block scan.

    Unlike the server plans the miss path is *metered*: encoding reads
    through :meth:`~repro.core.staging.StagedFile.scan_blocks`, which
    charges per-row file I/O exactly as the streaming scan does — so
    the explicit charges apply on hits only (``charge_on_miss=False``).
    """

    def encode() -> ColumnarPartition:
        blocks = list(staged.scan_blocks())
        if not blocks:
            return ColumnarPartition.from_rows([])
        matrix = np.vstack(blocks) if len(blocks) > 1 else blocks[0]
        return ColumnarPartition.from_matrix(matrix)

    def charge_scan() -> None:
        staged.charge_cached_read()

    def charge_rows(n: int) -> None:
        return None

    return ColumnarScanPlan(
        key=("file", staged.uid),
        n_rows=staged.row_count,
        encode=encode,
        charge_scan=charge_scan,
        charge_rows=charge_rows,
        filter_expr=None,
        charge_on_miss=False,
    )


__all__ = [
    "ColumnarScanCache",
    "ColumnarScanPlan",
    "index_fetch_plan",
    "keyset_fetch_plan",
    "plain_table_plan",
    "staged_file_plan",
    "tid_join_plan",
]
