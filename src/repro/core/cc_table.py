"""The CC (counts) table — the paper's sufficient statistic.

For one tree node, the CC table holds, for every attribute ``A`` still
present at the node and every value ``v`` it takes in the node's data,
the vector of co-occurrence counts with each class value
(Section 2.2's 4-column ``(attr_name, value, class, count)`` table).

The paper stores CC tables as binary trees sorted so that "retrieving a
vector of counts for the states of a class correlated with a particular
attribute and its state is efficient".  Here each ``(attribute, value)``
pair maps to a dense per-class count vector, giving the same O(1)
vector retrieval; iteration is explicitly sorted.

Memory accounting: one ``(attribute, value)`` pair costs
``PAIR_KEY_BYTES + BYTES_PER_COUNT * n_classes`` simulated bytes, and
every size the scheduler reasons about is expressed in *pairs*.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from ..common.errors import MiddlewareError

#: Simulated bytes for one (attribute, value) key.
PAIR_KEY_BYTES = 8
#: Simulated bytes for one class counter.
BYTES_PER_COUNT = 4


def bytes_for_pairs(n_pairs: int, n_classes: int) -> int:
    """Simulated size of a CC table with ``n_pairs`` (attr, value) pairs."""
    return n_pairs * (PAIR_KEY_BYTES + BYTES_PER_COUNT * n_classes)


def _value_sort_key(value: Any) -> tuple[bool, str, Any]:
    """Deterministic ordering for possibly-None attribute values."""
    return (value is not None, str(type(value)), value)


class CCTable:
    """Co-occurrence counts of (attribute, value) with the class."""

    __slots__ = ("attributes", "n_classes", "_vectors", "_records",
                 "_class_totals")

    def __init__(self, attributes: Iterable[str], n_classes: int) -> None:
        if n_classes < 1:
            raise MiddlewareError("CC table needs at least one class")
        self.attributes = tuple(attributes)
        self.n_classes = n_classes
        #: (attribute, value) -> list of class counts
        self._vectors: dict[tuple[str, Any], list[int]] = {}
        self._records = 0
        self._class_totals: list[int] = [0] * n_classes

    # -- updates ---------------------------------------------------------

    def count_row(self, values_by_attribute: Mapping[str, Any],
                  class_label: int) -> int:
        """Count one record.

        ``values_by_attribute`` maps attribute name -> value for (at
        least) every attribute in :attr:`attributes`.  Returns the
        number of *new* (attribute, value) pairs this record created,
        which callers use to grow their memory reservation.
        """
        vectors = self._vectors
        new_pairs = 0
        for attribute in self.attributes:
            key = (attribute, values_by_attribute[attribute])
            vector = vectors.get(key)
            if vector is None:
                vector = [0] * self.n_classes
                vectors[key] = vector
                new_pairs += 1
            vector[class_label] += 1
        self._records += 1
        self._class_totals[class_label] += 1
        return new_pairs

    def count_row_at(self, row: Sequence[Any],
                     attr_positions: Iterable[tuple[str, int]],
                     class_label: int) -> int:
        """Count one record straight from a row tuple.

        ``attr_positions`` is a precomputed sequence of
        ``(attribute, row_index)`` pairs covering :attr:`attributes`.
        Semantically identical to :meth:`count_row` but skips building
        a per-row name→value mapping — the scan kernel's hot path.
        Returns the number of new (attribute, value) pairs created.
        """
        vectors = self._vectors
        n_classes = self.n_classes
        new_pairs = 0
        for attribute, position in attr_positions:
            key = (attribute, row[position])
            vector = vectors.get(key)
            if vector is None:
                vector = [0] * n_classes
                vectors[key] = vector
                new_pairs += 1
            vector[class_label] += 1
        self._records += 1
        self._class_totals[class_label] += 1
        return new_pairs

    def would_add_pairs(
        self, values_by_attribute: Mapping[str, Any]
    ) -> int:
        """How many new pairs counting this record would create."""
        vectors = self._vectors
        return sum(
            1
            for attribute in self.attributes
            if (attribute, values_by_attribute[attribute]) not in vectors
        )

    def add_counts(self, attribute: str, value: Any, class_label: int,
                   count: int) -> None:
        """Bulk-add ``count`` co-occurrences (SQL result ingestion).

        Does *not* touch the record total — callers deriving a CC table
        from a SQL result set must call :meth:`set_records` (the record
        count equals the per-attribute sum, validated there).
        """
        if attribute not in self.attributes:
            raise MiddlewareError(f"unexpected attribute {attribute!r}")
        if not 0 <= class_label < self.n_classes:
            raise MiddlewareError(f"class label {class_label} out of range")
        key = (attribute, value)
        vector = self._vectors.get(key)
        if vector is None:
            vector = [0] * self.n_classes
            self._vectors[key] = vector
        vector[class_label] += count
        self._class_totals[class_label] += count

    def set_records(self, n_records: int) -> None:
        """Declare the record total after bulk ingestion.

        Class totals were accumulated once per attribute during
        ingestion; this rescales them back to per-record counts and
        validates consistency.
        """
        n_attributes = len(self.attributes)
        if n_attributes and self._records == 0:
            rescaled: list[int] = []
            for total in self._class_totals:
                if total % n_attributes:
                    raise MiddlewareError(
                        "inconsistent bulk counts: class total "
                        f"{total} not divisible by {n_attributes} attributes"
                    )
                rescaled.append(total // n_attributes)
            if sum(rescaled) != n_records:
                raise MiddlewareError(
                    f"bulk counts sum to {sum(rescaled)} records, "
                    f"expected {n_records}"
                )
            self._class_totals = rescaled
        self._records = n_records

    # -- reads ------------------------------------------------------------

    @property
    def records(self) -> int:
        """Number of records counted (|S| at the node)."""
        return self._records

    @property
    def n_pairs(self) -> int:
        """Number of distinct (attribute, value) pairs."""
        return len(self._vectors)

    @property
    def size_bytes(self) -> int:
        """Simulated memory footprint."""
        return bytes_for_pairs(self.n_pairs, self.n_classes)

    def class_totals(self) -> list[int]:
        """Per-class record counts at this node (a copy)."""
        return list(self._class_totals)

    def vector(self, attribute: str, value: Any) -> list[int]:
        """Class-count vector for ``(attribute, value)`` (a copy).

        Unseen pairs return a zero vector — a value absent from the
        node's data simply never co-occurred.
        """
        vector = self._vectors.get((attribute, value))
        if vector is None:
            return [0] * self.n_classes
        return list(vector)

    def values_of(self, attribute: str) -> list[Any]:
        """Sorted values ``attribute`` takes in the node's data.

        NULL-safe: a None value (possible when mining tables loaded
        with validation off) sorts first.
        """
        return sorted(
            (value for (attr, value) in self._vectors if attr == attribute),
            key=_value_sort_key,
        )

    def cardinality(self, attribute: str) -> int:
        """``card(n, A)`` — distinct values of ``attribute`` at the node."""
        return sum(1 for (attr, _) in self._vectors if attr == attribute)

    def pair_count_by_attribute(self) -> dict[str, int]:
        """Mapping attribute -> cardinality (for estimators)."""
        cards = {attribute: 0 for attribute in self.attributes}
        for attr, _ in self._vectors:
            cards[attr] += 1
        return cards

    def rows(self) -> list[tuple[str, Any, int, int]]:
        """The 4-column table, sorted: (attr_name, value, class, count).

        Zero counts are omitted, as a SQL GROUP BY would.
        """
        out: list[tuple[str, Any, int, int]] = []
        ordered = sorted(
            self._vectors.items(),
            key=lambda item: (item[0][0], _value_sort_key(item[0][1])),
        )
        for (attribute, value), vector in ordered:
            for class_label, count in enumerate(vector):
                if count:
                    out.append((attribute, value, class_label, count))
        return out

    def merge(self, other: CCTable) -> CCTable:
        """Fold ``other``'s counts into this table (same shape required).

        CC tables are purely additive: counts built over disjoint row
        partitions merge *exactly*, and merging is commutative and
        associative, so per-worker partials from a parallel scan can be
        absorbed in any completion order and still equal the serial
        count.  This is the contract the parallel scan executor (and
        :meth:`merged`) relies on.  Returns ``self``.
        """
        if (other.attributes != self.attributes
                or other.n_classes != self.n_classes):
            raise MiddlewareError("cannot merge CC tables of different shape")
        for (attribute, value), vector in other._vectors.items():
            mine = self._vectors.get((attribute, value))
            if mine is None:
                self._vectors[(attribute, value)] = list(vector)
            else:
                for class_label, count in enumerate(vector):
                    mine[class_label] += count
        self._records += other._records
        for class_label, count in enumerate(other._class_totals):
            self._class_totals[class_label] += count
        return self

    def merge_block(self, n_records: int, class_totals: Sequence[int],
                    blocks: Iterable[tuple[str, Sequence[Any],
                                           Sequence[Sequence[int]]]]) -> None:
        """Fold one vectorized partial: pre-aggregated count blocks.

        The columnar kernel returns, per attribute, the distinct values
        it saw and their per-class count vectors (zero vectors already
        omitted).  Folding them is the same additive merge as
        :meth:`merge`, just without materializing a partial
        :class:`CCTable` per partition.
        """
        vectors = self._vectors
        for attribute, values, counts in blocks:
            for value, vector in zip(values, counts):
                mine = vectors.get((attribute, value))
                if mine is None:
                    vectors[(attribute, value)] = list(vector)
                else:
                    for class_label, count in enumerate(vector):
                        mine[class_label] += count
        self._records += n_records
        for class_label, count in enumerate(class_totals):
            self._class_totals[class_label] += count

    @classmethod
    def merged(cls, attributes: Iterable[str], n_classes: int,
               partials: Iterable[CCTable]) -> CCTable:
        """Sum of additive partial tables (the parallel-scan merge).

        Builds one table of the given shape and folds every partial
        in; by the :meth:`merge` contract the result is independent of
        the order of ``partials``.
        """
        total = cls(attributes, n_classes)
        for partial in partials:
            total.merge(partial)
        return total

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CCTable)
            and self.attributes == other.attributes
            and self.n_classes == other.n_classes
            and self._records == other._records
            and self._vectors == other._vectors
        )

    def __repr__(self) -> str:
        return (
            f"CCTable(records={self._records}, pairs={self.n_pairs}, "
            f"attributes={len(self.attributes)})"
        )
