"""Lock and resource-lifecycle factory with a pluggable monitor.

Every lock protecting shared middleware state is created through
:func:`new_lock` / :func:`new_rlock` instead of calling
``threading.Lock()`` directly, and every scan-lifetime resource
(executor, submitted future, staged file, writer/producer thread)
announces its creation and retirement through :func:`resource_created`
/ :func:`resource_closed`.

In production both surfaces are free: the default
:class:`LockMonitor` hands back plain ``threading`` primitives and the
resource hooks are no-ops.  The runtime concurrency sanitizer
(:mod:`repro.analysis.runtime`) installs its own monitor via
:func:`install_monitor`, swapping in instrumented locks that record
per-thread acquisition stacks and a global lock-order graph, and a
resource witness that turns create-without-close into a reported leak.

The dependency points one way only: ``repro.core`` imports this
module, never ``repro.analysis`` — the sanitizer reaches *in* through
the monitor hook, so the core carries no analysis imports.

The ``name`` passed to the factories is the lock's *contract name*,
``"ClassName.attr"`` (e.g. ``"ScanWorkerPool._lock"``).  The same
naming is used by the static ``lock-order`` rule and the checked-in
lock-order witness file, so static edges, runtime edges and guarded-by
contracts all speak about the same lock.
"""

from __future__ import annotations

import threading
from typing import Any


class LockMonitor:
    """The no-op default monitor; the sanitizer subclasses this.

    ``make_lock``/``make_rlock`` return objects honouring the
    ``threading.Lock`` context-manager protocol (the return type is
    ``Any`` so instrumented wrappers can stand in for the real thing).
    """

    def make_lock(self, name: str) -> Any:
        return threading.Lock()

    def make_rlock(self, name: str) -> Any:
        return threading.RLock()

    def resource_created(self, kind: str, obj: object,
                         detail: str = "") -> None:
        """``obj`` (an executor, future, staged file, ...) came alive."""

    def resource_closed(self, kind: str, obj: object) -> None:
        """``obj`` was retired cleanly (close/seal/delete/resolve)."""


#: The active monitor.  Swapped atomically (module attribute rebind) by
#: install_monitor/reset_monitor; readers take one reference and use it.
_monitor: LockMonitor = LockMonitor()


def new_lock(name: str) -> Any:
    """A mutex for ``name`` (``"ClassName.attr"``) via the monitor."""
    return _monitor.make_lock(name)


def new_rlock(name: str) -> Any:
    """A reentrant mutex for ``name`` via the active monitor."""
    return _monitor.make_rlock(name)


def resource_created(kind: str, obj: object, detail: str = "") -> None:
    """Announce a tracked resource's birth to the active monitor."""
    _monitor.resource_created(kind, obj, detail)


def resource_closed(kind: str, obj: object) -> None:
    """Announce a tracked resource's clean retirement."""
    _monitor.resource_closed(kind, obj)


def install_monitor(monitor: LockMonitor) -> LockMonitor:
    """Install ``monitor``; returns the one it replaced.

    Locks already handed out by the previous monitor keep working —
    only *new* factory calls see the replacement, which is why the
    sanitizer activates before building the objects under test.
    """
    global _monitor
    previous = _monitor
    _monitor = monitor
    return previous


def reset_monitor() -> None:
    """Restore the no-op default monitor."""
    global _monitor
    _monitor = LockMonitor()


def current_monitor() -> LockMonitor:
    """The monitor currently receiving factory calls and hooks."""
    return _monitor
