"""Plain-text table rendering for benchmark reports.

The benchmark harness prints the same rows/series the paper plots;
``render_table`` keeps that output aligned and diff-friendly without any
third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_value(value: object) -> str:
    """Render a cell: floats get 2 decimals, everything else ``str``."""
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(headers: Sequence[object],
                 rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render ``rows`` (sequences) under ``headers`` as an aligned table."""
    cells = [[format_value(v) for v in row] for row in rows]
    names = [str(h) for h in headers]
    widths = [len(h) for h in names]
    for row in cells:
        if len(row) != len(names):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(parts: Iterable[str]) -> str:
        return "  ".join(part.rjust(widths[i]) for i, part in enumerate(parts))

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(names))
    out.append(line(["-" * w for w in widths]))
    for row in cells:
        out.append(line(row))
    return "\n".join(out)


def render_series(name: str, xs: Iterable[object],
                  ys: Iterable[object]) -> str:
    """Render one named (x, y) series, one point per line."""
    rows: list[Sequence[object]] = [list(p) for p in zip(xs, ys)]
    return render_table(["x", name], rows)


def human_bytes(nbytes: float) -> str:
    """Human-readable byte size (binary units), e.g. ``'64.0 KiB'``."""
    size = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            if unit == "B":
                return f"{int(size)} B"
            return f"{size:.1f} {unit}"
        size /= 1024
    raise AssertionError("unreachable")
