"""Plain-text table rendering for benchmark reports.

The benchmark harness prints the same rows/series the paper plots;
``render_table`` keeps that output aligned and diff-friendly without any
third-party dependency.
"""

from __future__ import annotations


def format_value(value):
    """Render a cell: floats get 2 decimals, everything else ``str``."""
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(headers, rows, title=None):
    """Render ``rows`` (sequences) under ``headers`` as an aligned table."""
    cells = [[format_value(v) for v in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(parts):
        return "  ".join(part.rjust(widths[i]) for i, part in enumerate(parts))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in cells:
        out.append(line(row))
    return "\n".join(out)


def render_series(name, xs, ys):
    """Render one named (x, y) series, one point per line."""
    rows = list(zip(xs, ys))
    return render_table(["x", name], rows)


def human_bytes(nbytes):
    """Human-readable byte size (binary units), e.g. ``'64.0 KiB'``."""
    size = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            if unit == "B":
                return f"{int(size)} B"
            return f"{size:.1f} {unit}"
        size /= 1024
    raise AssertionError("unreachable")
