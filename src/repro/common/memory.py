"""Byte-accurate accounting of the middleware's memory budget.

The scheduler's whole job (Section 4.2) is deciding what fits: CC tables
for the batch being counted, plus any data sets staged in middleware
memory.  ``MemoryBudget`` is the single authority both consult.  It
tracks named reservations so tests can verify exactly what is resident,
and it raises :class:`~repro.common.errors.MemoryBudgetExceeded` on
over-commit, which the execution module converts into the lazy SQL
fallback of Section 4.1.1.
"""

from __future__ import annotations

from .errors import MemoryBudgetExceeded


class MemoryBudget:
    """A fixed pool of simulated bytes with named reservations."""

    def __init__(self, budget_bytes: int):
        if budget_bytes < 0:
            raise ValueError("memory budget must be non-negative")
        self._budget = int(budget_bytes)
        self._reservations: dict[str, int] = {}

    @property
    def budget(self) -> int:
        """Total size of the pool in bytes."""
        return self._budget

    @property
    def used(self) -> int:
        """Bytes currently reserved."""
        return sum(self._reservations.values())

    @property
    def available(self) -> int:
        """Bytes currently free."""
        return self._budget - self.used

    def holds(self, tag: str) -> bool:
        """True if a reservation named ``tag`` exists."""
        return tag in self._reservations

    def reserved(self, tag: str) -> int:
        """Size in bytes of the reservation named ``tag`` (0 if absent)."""
        return self._reservations.get(tag, 0)

    def fits(self, nbytes: int) -> bool:
        """True if ``nbytes`` more could be reserved right now."""
        return nbytes <= self.available

    def reserve(self, tag: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``tag``; raises if it does not fit.

        Reserving an existing tag *adds* to it (CC tables grow as a scan
        discovers new (attribute, value, class) combinations).
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("cannot reserve a negative size")
        if nbytes > self.available:
            raise MemoryBudgetExceeded(nbytes, self.available, self._budget)
        self._reservations[tag] = self._reservations.get(tag, 0) + nbytes

    def try_reserve(self, tag: str, nbytes: int) -> bool:
        """Like :meth:`reserve` but returns False instead of raising."""
        try:
            self.reserve(tag, nbytes)
        except MemoryBudgetExceeded:
            return False
        return True

    def release(self, tag: str) -> int:
        """Free the reservation named ``tag``; returns the bytes freed."""
        return self._reservations.pop(tag, 0)

    def resize(self, tag: str, nbytes: int) -> None:
        """Set the reservation named ``tag`` to exactly ``nbytes``."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("cannot resize to a negative size")
        current = self._reservations.get(tag, 0)
        growth = nbytes - current
        if growth > self.available:
            raise MemoryBudgetExceeded(growth, self.available, self._budget)
        if nbytes == 0:
            self._reservations.pop(tag, None)
        else:
            self._reservations[tag] = nbytes

    def tags(self) -> list[str]:
        """Names of all live reservations."""
        return list(self._reservations)

    def __repr__(self) -> str:
        return (
            f"MemoryBudget(used={self.used}/{self._budget}, "
            f"reservations={len(self._reservations)})"
        )
