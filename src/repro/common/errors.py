"""Exception hierarchy shared by every layer of the reproduction.

Keeping all exceptions in one module gives callers a single import point
and lets tests assert on precise failure modes instead of bare ``Exception``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SQLError(ReproError):
    """Base class for errors raised by the SQL engine substrate."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenised or parsed."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class CatalogError(SQLError):
    """A table or column referenced in a statement does not exist."""


class DuplicateObjectError(CatalogError):
    """An object (table, cursor) with that name already exists."""


class TypeMismatchError(SQLError):
    """A value does not match the declared column type."""


class CursorStateError(SQLError):
    """A cursor operation was issued in the wrong state (closed, exhausted)."""


class MiddlewareError(ReproError):
    """Base class for errors raised by the classification middleware."""


class MemoryBudgetExceeded(MiddlewareError):
    """A reservation was attempted beyond the configured memory budget.

    The middleware catches this internally to trigger the lazy SQL
    fallback of Section 4.1.1; it escapes only on programming errors.
    """

    def __init__(self, requested: int, available: int, budget: int):
        super().__init__(
            f"requested {requested} bytes but only {available} of "
            f"{budget} bytes are free"
        )
        self.requested = requested
        self.available = available
        self.budget = budget


class SchedulingError(MiddlewareError):
    """The scheduler was asked to violate one of its invariants."""


class StagingError(MiddlewareError):
    """Inconsistent staging state (missing file, unknown node location)."""


class ClientError(ReproError):
    """Base class for errors raised by the mining clients."""


class NotFittedError(ClientError):
    """Predict/inspect was called before the model was fitted."""


class DataGenerationError(ReproError):
    """A synthetic data generator was configured inconsistently."""
