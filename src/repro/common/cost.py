"""Deterministic cost accounting for the simulated storage hierarchy.

The paper reports wall-clock seconds on 1999 hardware (Pentium-II boxes
talking OLE-DB to SQL Server 7.0).  Absolute numbers are unreproducible,
but every experimental *shape* in the paper is driven by cost ratios:

* a server scan is far more expensive per row than a middleware file scan,
  which in turn is more expensive than touching a row in middleware memory;
* each SQL statement pays a fixed parse/optimize/start-up overhead, which
  is what makes the per-node UNION-of-GROUP-BYs baseline collapse;
* pushing a WHERE filter to the server saves *transfer* cost but the
  server still reads every page of the table.

``CostModel`` makes those ratios explicit and tunable; ``CostMeter``
accumulates charges per category so benchmarks can report a breakdown.
All charges are plain floats in abstract "cost units".
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostModel:
    """Unit costs of the simulated storage hierarchy.

    The defaults were chosen so that the orderings the paper relies on
    hold with comfortable margins:
    ``memory_row`` < ``file_row_io`` < effective per-row server cost,
    and ``query_overhead`` dominates small queries.
    """

    #: Cost of reading one page at the database server.
    server_page_io: float = 1.0
    #: Cost of shipping one qualifying row from server to middleware.
    transfer_per_row: float = 0.2
    #: Cost of evaluating one row against one GROUP BY branch at the server.
    groupby_row: float = 0.02
    #: Fixed cost per SQL statement (parse, optimize, plan start-up).
    query_overhead: float = 50.0
    #: Fixed cost of opening a server cursor.
    cursor_open: float = 10.0

    #: Cost of reading one row from a middleware staging file.
    file_row_io: float = 0.05
    #: Cost of appending one row to a middleware staging file.
    file_write_row: float = 0.08

    #: Cost of touching one row staged in middleware memory.
    memory_row: float = 0.005
    #: Cost of loading one row into middleware memory.
    memory_load_row: float = 0.005

    #: Cost of one hash-join probe per outer row.
    hash_join_row: float = 0.02
    #: Cost of one secondary-index probe (root-to-leaf descent).
    index_probe: float = 0.5
    #: Cost of fetching one row by TID after an index probe.
    index_row_fetch: float = 0.05
    #: Cost of inserting one entry while building a secondary index.
    index_build_row: float = 0.02

    #: Cost of writing one row into a server-side temp table (aux §4.3.3a).
    temp_table_row_write: float = 0.1
    #: Cost per row of a TID join at the server (aux §4.3.3b).
    tid_join_row: float = 0.03
    #: Cost per keyset entry evaluated by the stored-proc filter (§4.3.3c).
    keyset_row: float = 0.01


#: Charge categories used by :class:`CostMeter`. Kept as a tuple so report
#: code can iterate them in a stable order.
CATEGORIES = (
    "server_io",
    "transfer",
    "groupby",
    "query_overhead",
    "cursor",
    "file_read",
    "file_write",
    "memory_read",
    "memory_load",
    "temp_table",
    "tid_join",
    "keyset",
    "index",
    "join",
)


@dataclass
class CostMeter:
    """Accumulates simulated cost, broken down by category.

    A single meter is threaded through the SQL engine and the middleware
    so one experiment run yields one total.  Meters can be snapshotted
    and diffed, which is how benchmarks charge individual phases.
    """

    charges: dict[str, float] = field(
        default_factory=lambda: {c: 0.0 for c in CATEGORIES}
    )
    counts: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in CATEGORIES}
    )

    def charge(self, category: str, amount: float,
               events: int = 1) -> None:
        """Add ``amount`` cost units under ``category``.

        ``events`` counts how many underlying operations the charge
        covers (e.g. rows read), for diagnostic reporting.
        """
        if category not in self.charges:
            raise KeyError(f"unknown cost category: {category!r}")
        if amount < 0:
            raise ValueError("cost charges must be non-negative")
        self.charges[category] += amount
        self.counts[category] += events

    @property
    def total(self) -> float:
        """Total simulated cost across all categories."""
        return sum(self.charges.values())

    def snapshot(self) -> dict[str, float]:
        """Return an immutable copy of the current charges."""
        return dict(self.charges)

    def since(self, snapshot: dict[str, float]) -> dict[str, float]:
        """Per-category charges accumulated since ``snapshot``."""
        return {c: self.charges[c] - snapshot.get(c, 0.0) for c in self.charges}

    def total_since(self, snapshot: dict[str, float]) -> float:
        """Total cost accumulated since ``snapshot``."""
        return self.total - sum(snapshot.values())

    def rollback_to(self, snapshot: dict[str, float]) -> None:
        """Restore charges to ``snapshot`` (event counts are kept).

        Used to model idealised operations the paper assumes free, e.g.
        "neglecting the cost of creating index structures" (§5.2.5).
        """
        for category in self.charges:
            self.charges[category] = snapshot.get(category, 0.0)

    def reset(self) -> None:
        """Zero out all charges and event counts."""
        for category in self.charges:
            self.charges[category] = 0.0
            self.counts[category] = 0

    def breakdown(self) -> list[tuple[str, float]]:
        """Non-zero charges, largest first, as ``[(category, cost), ...]``."""
        items = [(c, v) for c, v in self.charges.items() if v > 0]
        items.sort(key=lambda item: item[1], reverse=True)
        return items

    def __str__(self) -> str:
        parts = ", ".join(f"{c}={v:.1f}" for c, v in self.breakdown())
        return f"CostMeter(total={self.total:.1f}; {parts})"
