"""Cross-cutting utilities: errors, cost accounting, memory budgeting."""

from .cost import CostModel, CostMeter, CATEGORIES
from .errors import (
    CatalogError,
    ClientError,
    CursorStateError,
    DataGenerationError,
    DuplicateObjectError,
    MemoryBudgetExceeded,
    MiddlewareError,
    NotFittedError,
    ReproError,
    SchedulingError,
    SQLError,
    SQLSyntaxError,
    StagingError,
    TypeMismatchError,
)
from .locks import (
    LockMonitor,
    current_monitor,
    install_monitor,
    new_lock,
    new_rlock,
    reset_monitor,
    resource_closed,
    resource_created,
)
from .memory import MemoryBudget
from .text import format_value, human_bytes, render_series, render_table

__all__ = [
    "CATEGORIES",
    "CatalogError",
    "ClientError",
    "CostMeter",
    "CostModel",
    "CursorStateError",
    "DataGenerationError",
    "DuplicateObjectError",
    "LockMonitor",
    "MemoryBudget",
    "MemoryBudgetExceeded",
    "MiddlewareError",
    "NotFittedError",
    "ReproError",
    "SchedulingError",
    "SQLError",
    "SQLSyntaxError",
    "StagingError",
    "TypeMismatchError",
    "current_monitor",
    "format_value",
    "human_bytes",
    "install_monitor",
    "new_lock",
    "new_rlock",
    "render_series",
    "render_table",
    "reset_monitor",
    "resource_closed",
    "resource_created",
]
