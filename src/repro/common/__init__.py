"""Cross-cutting utilities: errors, cost accounting, memory budgeting."""

from .cost import CostModel, CostMeter, CATEGORIES
from .errors import (
    CatalogError,
    ClientError,
    CursorStateError,
    DataGenerationError,
    DuplicateObjectError,
    MemoryBudgetExceeded,
    MiddlewareError,
    NotFittedError,
    ReproError,
    SchedulingError,
    SQLError,
    SQLSyntaxError,
    StagingError,
    TypeMismatchError,
)
from .memory import MemoryBudget
from .text import format_value, human_bytes, render_series, render_table

__all__ = [
    "CATEGORIES",
    "CatalogError",
    "ClientError",
    "CostMeter",
    "CostModel",
    "CursorStateError",
    "DataGenerationError",
    "DuplicateObjectError",
    "MemoryBudget",
    "MemoryBudgetExceeded",
    "MiddlewareError",
    "NotFittedError",
    "ReproError",
    "SchedulingError",
    "SQLError",
    "SQLSyntaxError",
    "StagingError",
    "TypeMismatchError",
    "format_value",
    "human_bytes",
    "render_series",
    "render_table",
]
