"""Scalable Classification over SQL Databases — a full reproduction.

Reproduces Chaudhuri, Fayyad & Bernhardt (ICDE 1999): a middleware
layer that scales decision-tree (and Naive Bayes) classification over a
SQL backend by batching sufficient-statistics queries into single data
scans and staging shrinking data sets from the server to middleware
files to middleware memory.

Quickstart::

    from repro import (
        SQLServer, Middleware, MiddlewareConfig, DecisionTreeClassifier,
        RandomTreeConfig, build_random_tree, load_dataset,
    )

    tree = build_random_tree(RandomTreeConfig(n_leaves=50, cases_per_leaf=40))
    server = SQLServer()
    load_dataset(server, "data", tree.spec, tree.generate_rows())

    with Middleware(server, "data", tree.spec, MiddlewareConfig()) as mw:
        model = DecisionTreeClassifier().fit(mw)

    print(model.tree.render(max_depth=2))
    print(f"simulated cost: {server.meter.total:.0f}")
"""

from .client import (
    DecisionTree,
    DecisionTreeClassifier,
    Discretizer,
    GrowthPolicy,
    NaiveBayesClassifier,
    grow_in_memory,
    prune,
)
from .common import CostMeter, CostModel, MemoryBudget
from .core import (
    CCTable,
    CountsRequest,
    CountsResult,
    DataLocation,
    Middleware,
    MiddlewareConfig,
)
from .datagen import (
    CensusConfig,
    DatasetSpec,
    GaussianMixtureConfig,
    RandomTreeConfig,
    build_random_tree,
    census_spec,
    generate_census_dataset,
    generate_gaussian_dataset,
    generate_random_tree_dataset,
    load_dataset,
    uniform_spec,
)
from .sqlengine import SQLServer

__version__ = "1.0.0"

__all__ = [
    "CCTable",
    "CensusConfig",
    "CostMeter",
    "CostModel",
    "CountsRequest",
    "CountsResult",
    "DataLocation",
    "DatasetSpec",
    "DecisionTree",
    "DecisionTreeClassifier",
    "Discretizer",
    "GaussianMixtureConfig",
    "GrowthPolicy",
    "MemoryBudget",
    "Middleware",
    "MiddlewareConfig",
    "NaiveBayesClassifier",
    "RandomTreeConfig",
    "SQLServer",
    "__version__",
    "build_random_tree",
    "census_spec",
    "generate_census_dataset",
    "generate_gaussian_dataset",
    "generate_random_tree_dataset",
    "grow_in_memory",
    "load_dataset",
    "prune",
    "uniform_spec",
]
