"""Candidate split enumeration and selection, from CC tables alone.

Two split families, matching the paper's experiments:

* **binary** value-vs-rest splits (``A = v`` / ``A <> v``) — the form
  the experiments grow ("only binary trees were grown from the data"),
* **multiway** complete splits (one child per present value).

Tie-breaking is fully deterministic — (score, attribute name, value) —
which is what makes the middleware-grown tree provably identical to an
in-memory reference grower: both call this module on identical CC
tables.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Optional

from ..common.errors import ClientError
from ..core.filters import PathCondition
from .criteria import SplitCriterion

if TYPE_CHECKING:
    from ..core.cc_table import CCTable

#: Scores within this tolerance are considered tied (floating point).
SCORE_EPSILON = 1e-12


class ChildSpec:
    """One would-be child: edge condition plus exact statistics."""

    __slots__ = ("condition", "n_rows", "class_counts")

    def __init__(self, condition: PathCondition, n_rows: int,
                 class_counts: Iterable[int]) -> None:
        self.condition = condition
        self.n_rows = n_rows
        self.class_counts = list(class_counts)

    def __repr__(self) -> str:
        c = self.condition
        return (
            f"ChildSpec({c.attribute} {c.op} {c.value}, rows={self.n_rows})"
        )


class CandidateSplit:
    """A scored candidate partition of a node's data."""

    __slots__ = ("attribute", "kind", "value", "children", "score")

    def __init__(self, attribute: str, kind: str, value: Any,
                 children: list[ChildSpec], score: float) -> None:
        self.attribute = attribute
        self.kind = kind  # "binary" or "multiway"
        self.value = value  # the pivot value for binary splits, else None
        self.children = children
        self.score = score

    def sort_key(self) -> tuple[float, str, Any]:
        """Orders candidates best-first, deterministically."""
        pivot = self.value if self.value is not None else -1
        return (-self.score, self.attribute, pivot)

    def __repr__(self) -> str:
        return (
            f"CandidateSplit({self.attribute}, {self.kind}, "
            f"value={self.value}, score={self.score:.4f})"
        )


def enumerate_binary_splits(
    cc: "CCTable", attribute: str
) -> list[tuple[Any, list[ChildSpec]]]:
    """All value-vs-rest splits of ``attribute`` with two non-empty sides."""
    totals = cc.class_totals()
    candidates: list[tuple[Any, list[ChildSpec]]] = []
    for value in cc.values_of(attribute):
        inside = cc.vector(attribute, value)
        n_inside = sum(inside)
        n_outside = cc.records - n_inside
        if n_inside == 0 or n_outside == 0:
            continue
        outside = [t - i for t, i in zip(totals, inside)]
        children = [
            ChildSpec(PathCondition(attribute, "=", value), n_inside, inside),
            ChildSpec(
                PathCondition(attribute, "<>", value), n_outside, outside
            ),
        ]
        candidates.append((value, children))
    return candidates


def enumerate_multiway_split(
    cc: "CCTable", attribute: str
) -> Optional[list[ChildSpec]]:
    """The complete split of ``attribute`` (one child per value), or None."""
    values = cc.values_of(attribute)
    if len(values) < 2:
        return None
    children: list[ChildSpec] = []
    for value in values:
        counts = cc.vector(attribute, value)
        children.append(
            ChildSpec(PathCondition(attribute, "=", value), sum(counts), counts)
        )
    return children


def best_split(cc: "CCTable", criterion: SplitCriterion,
               binary: bool = True,
               min_gain: float = 0.0) -> Optional[CandidateSplit]:
    """The highest-scoring candidate split, or None if none qualifies.

    ``min_gain`` filters out splits whose score is not strictly above
    it (0.0 rejects zero-gain splits, which would loop forever).
    """
    if cc.records == 0:
        raise ClientError("cannot split an empty node")
    parent_counts = cc.class_totals()
    candidates: list[CandidateSplit] = []
    for attribute in cc.attributes:
        if binary:
            for value, children in enumerate_binary_splits(cc, attribute):
                score = criterion.score(
                    parent_counts, [c.class_counts for c in children]
                )
                if score > min_gain + SCORE_EPSILON:
                    candidates.append(
                        CandidateSplit(attribute, "binary", value, children,
                                       score)
                    )
        else:
            children = enumerate_multiway_split(cc, attribute)
            if children is None:
                continue
            score = criterion.score(
                parent_counts, [c.class_counts for c in children]
            )
            if score > min_gain + SCORE_EPSILON:
                candidates.append(
                    CandidateSplit(attribute, "multiway", None, children,
                                   score)
                )
    if not candidates:
        return None
    return min(candidates, key=CandidateSplit.sort_key)


def child_attributes(parent_attributes: Iterable[str],
                     parent_cc: "CCTable", split: CandidateSplit,
                     child: ChildSpec) -> tuple[str, ...]:
    """Attributes still informative at ``child`` after ``split``.

    An attribute is dropped once the path fixes its value: the branch
    taken on a complete split, the ``=`` branch of a binary split, and
    the ``<>`` branch when only two values existed at the parent (the
    exclusion pins the remaining one).
    """
    condition = child.condition
    attribute = split.attribute
    if condition.op == "=":
        drop = True
    else:
        drop = parent_cc.cardinality(attribute) <= 2
    if not drop:
        return tuple(parent_attributes)
    return tuple(a for a in parent_attributes if a != attribute)
