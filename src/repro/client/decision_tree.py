"""The middleware-driven decision-tree classifier (the paper's client).

Implements the client side of Figure 3:

1. queue a counts request for every active node,
2. wait for the middleware to fulfil *some* of them (the middleware
   decides the order),
3. consume the CC tables, partition those nodes, and queue requests
   for the new active children,
4. repeat until no active nodes remain.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Optional, Sequence, Union

from ..common.errors import NotFittedError
from ..core.estimators import estimate_cc_pairs, root_cc_pairs
from ..core.filters import PathCondition
from ..core.requests import CountsRequest
from .criteria import SplitCriterion
from .growth import GrowthPolicy, partition_node
from .tree import DecisionTree, TreeNode

if TYPE_CHECKING:
    from ..core.cc_table import CCTable
    from ..core.middleware import Middleware
    from ..datagen.dataset import DatasetSpec


class DecisionTreeClassifier:
    """Decision-tree induction over a SQL table via the middleware."""

    def __init__(self, criterion: Union[str, SplitCriterion] = "entropy",
                 binary_splits: bool = True,
                 max_depth: Optional[int] = None, min_rows: int = 2,
                 min_gain: float = 0.0) -> None:
        self.policy = GrowthPolicy(
            criterion=criterion,
            binary_splits=binary_splits,
            max_depth=max_depth,
            min_rows=min_rows,
            min_gain=min_gain,
        )
        self.tree_: Optional[DecisionTree] = None

    # -- fitting ---------------------------------------------------------

    def fit(self, middleware: "Middleware") -> "DecisionTreeClassifier":
        """Grow the full tree through ``middleware``; returns self."""
        spec = middleware.spec
        tree = DecisionTree(spec)
        root = tree.root
        root.n_rows = middleware.server.table(middleware.table_name).row_count

        middleware.queue_request(self._root_request(root, spec))
        for results in middleware.serve():
            for result in results:
                node = tree.nodes[result.node_id]
                node.location_tag = result.source.tag
                children = partition_node(tree, node, result.cc, self.policy)
                for child in children:
                    middleware.queue_request(
                        self._child_request(child, node, result.cc)
                    )
        self.tree_ = tree
        return self

    def _root_request(self, root: TreeNode,
                      spec: "DatasetSpec") -> CountsRequest:
        assert root.n_rows is not None  # set by fit() before queueing
        return CountsRequest(
            node_id=root.node_id,
            lineage=root.lineage(),
            conditions=(),
            attributes=root.attributes,
            n_rows=root.n_rows,
            est_cc_pairs=root_cc_pairs(spec, root.attributes),
        )

    def _child_request(self, child: TreeNode, parent: TreeNode,
                       parent_cc: "CCTable") -> CountsRequest:
        assert child.n_rows is not None and parent.n_rows is not None
        est_pairs = estimate_cc_pairs(
            child.n_rows,
            parent.n_rows,
            parent_cc.pair_count_by_attribute(),
            child.attributes,
        )
        return CountsRequest(
            node_id=child.node_id,
            lineage=child.lineage(),
            conditions=child.path_conditions(),
            attributes=child.attributes,
            n_rows=child.n_rows,
            est_cc_pairs=est_pairs,
        )

    # -- prediction -------------------------------------------------------

    @property
    def tree(self) -> DecisionTree:
        if self.tree_ is None:
            raise NotFittedError("call fit() before using the model")
        return self.tree_

    def predict_row(self, row: Sequence[Any]) -> int:
        return self.tree.predict_row(row)

    def predict(self, rows: Iterable[Sequence[Any]]) -> list[int]:
        return self.tree.predict(rows)

    def accuracy(self, rows: Iterable[Sequence[Any]]) -> float:
        return self.tree.accuracy(rows)

    def rules(
        self,
    ) -> list[tuple[list[PathCondition], int, Optional[int]]]:
        return self.tree.rules()

    def __repr__(self) -> str:
        if self.tree_ is None:
            return "DecisionTreeClassifier(unfitted)"
        return (
            f"DecisionTreeClassifier(nodes={self.tree_.n_nodes}, "
            f"leaves={self.tree_.n_leaves}, depth={self.tree_.depth})"
        )
