"""Discretisation of numeric attributes.

The paper assumes "all attributes are categorical or have been
discretized (see [CFB97] for how numeric-valued attributes are
treated)".  This module supplies the missing step: equal-width,
equal-frequency, and Fayyad–Irani entropy/MDL discretisation, plus a
:class:`Discretizer` that converts a numeric matrix into the
categorical codes the rest of the system consumes.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional

import numpy as np
import numpy.typing as npt

from ..common.errors import ClientError
from ..datagen.dataset import DatasetSpec
from .criteria import entropy


def equal_width_edges(values: npt.ArrayLike, n_bins: int) -> list[float]:
    """Cut points splitting [min, max] into ``n_bins`` equal intervals."""
    if n_bins < 2:
        raise ClientError("need at least two bins")
    column = np.asarray(values, dtype=float)
    if column.size == 0:
        raise ClientError("cannot discretise an empty column")
    low = float(column.min())
    high = float(column.max())
    if low == high:
        return []
    return [float(e) for e in np.linspace(low, high, n_bins + 1)[1:-1]]


def equal_frequency_edges(values: npt.ArrayLike,
                          n_bins: int) -> list[float]:
    """Cut points putting ~equal record counts in each bin."""
    if n_bins < 2:
        raise ClientError("need at least two bins")
    column = np.sort(np.asarray(values, dtype=float))
    if column.size == 0:
        raise ClientError("cannot discretise an empty column")
    quantiles = np.linspace(0, 1, n_bins + 1)[1:-1]
    edges = np.quantile(column, quantiles)
    # Collapse duplicate edges (heavy ties) so bins stay distinct.
    unique: list[float] = []
    for edge in edges:
        if not unique or edge > unique[-1]:
            unique.append(float(edge))
    return unique


def mdl_entropy_edges(values: npt.ArrayLike, labels: npt.ArrayLike,
                      max_depth: int = 16) -> list[float]:
    """Fayyad–Irani recursive entropy discretisation with MDL stopping.

    Candidate cuts are boundary points (midpoints between adjacent
    examples of different classes); a cut is accepted when its
    information gain beats the MDL criterion, and accepted intervals
    are split recursively.
    """
    column = np.asarray(values, dtype=float)
    targets = np.asarray(labels)
    if column.size != targets.size:
        raise ClientError("values and labels must align")
    if column.size == 0:
        raise ClientError("cannot discretise an empty column")
    order = np.argsort(column, kind="stable")
    column = column[order]
    targets = targets[order]
    edges: list[float] = []
    _mdl_split(column, targets, 0, column.size, edges, max_depth)
    edges.sort()
    return edges


def _mdl_split(values: npt.NDArray[np.float64], labels: npt.NDArray[Any],
               start: int, stop: int, edges: list[float],
               depth: int) -> None:
    if depth <= 0 or stop - start < 4:
        return
    best = _best_cut(values, labels, start, stop)
    if best is None:
        return
    cut_index, gain, cut_value = best
    if not _mdl_accepts(labels, start, stop, cut_index, gain):
        return
    edges.append(float(cut_value))
    _mdl_split(values, labels, start, cut_index, edges, depth - 1)
    _mdl_split(values, labels, cut_index, stop, edges, depth - 1)


def _class_counts(labels: npt.NDArray[Any], start: int,
                  stop: int) -> dict[Any, int]:
    counts: dict[Any, int] = {}
    for label in labels[start:stop]:
        counts[label] = counts.get(label, 0) + 1
    return counts


def _best_cut(
    values: npt.NDArray[np.float64],
    labels: npt.NDArray[Any],
    start: int,
    stop: int,
) -> Optional[tuple[int, float, float]]:
    """Highest-gain boundary cut in [start, stop), or None."""
    n = stop - start
    parent_entropy = entropy(list(_class_counts(labels, start, stop).values()))
    best: Optional[tuple[int, float, float]] = None
    left: dict[Any, int] = {}
    right = _class_counts(labels, start, stop)
    for i in range(start, stop - 1):
        label = labels[i]
        left[label] = left.get(label, 0) + 1
        right[label] -= 1
        if values[i] == values[i + 1]:
            continue
        n_left = i - start + 1
        n_right = n - n_left
        gain = parent_entropy - (
            n_left / n * entropy(list(left.values()))
            + n_right / n * entropy(list(right.values()))
        )
        if best is None or gain > best[1]:
            cut_value = float(values[i] + values[i + 1]) / 2.0
            best = (i + 1, gain, cut_value)
    return best


def _mdl_accepts(labels: npt.NDArray[Any], start: int, stop: int,
                 cut_index: int, gain: float) -> bool:
    """The Fayyad–Irani MDL acceptance test."""
    n = stop - start
    parent = _class_counts(labels, start, stop)
    left = _class_counts(labels, start, cut_index)
    right = _class_counts(labels, cut_index, stop)
    k = len(parent)
    k_left = len(left)
    k_right = len(right)
    ent = entropy(list(parent.values()))
    ent_left = entropy(list(left.values()))
    ent_right = entropy(list(right.values()))
    delta = (
        math.log2(3**k - 2)
        - (k * ent - k_left * ent_left - k_right * ent_right)
    )
    threshold = (math.log2(n - 1) + delta) / n
    return gain > threshold


class Discretizer:
    """Fit bucket edges on a numeric matrix; transform to codes."""

    METHODS = ("equal_width", "equal_frequency", "mdl")

    def __init__(self, method: str = "equal_width",
                 n_bins: int = 8) -> None:
        if method not in self.METHODS:
            raise ClientError(f"method must be one of {self.METHODS}")
        self.method = method
        self.n_bins = n_bins
        self.edges_: Optional[list[list[float]]] = None

    def fit(self, X: npt.ArrayLike,
            y: Optional[npt.ArrayLike] = None) -> "Discretizer":
        """Learn per-column cut points; returns self."""
        matrix = np.asarray(X, dtype=float)
        if matrix.ndim != 2:
            raise ClientError("X must be a 2-D matrix")
        if self.method == "mdl" and y is None:
            raise ClientError("mdl discretisation requires labels")
        edges: list[list[float]] = []
        for j in range(matrix.shape[1]):
            column = matrix[:, j]
            if self.method == "equal_width":
                edges.append(equal_width_edges(column, self.n_bins))
            elif self.method == "equal_frequency":
                edges.append(equal_frequency_edges(column, self.n_bins))
            else:
                assert y is not None  # guarded at entry for "mdl"
                edges.append(mdl_entropy_edges(column, y))
        self.edges_ = edges
        return self

    def transform(self, X: npt.ArrayLike) -> npt.NDArray[np.int64]:
        """Map numeric values to bucket codes column by column."""
        if self.edges_ is None:
            raise ClientError("fit() the discretizer first")
        matrix = np.asarray(X, dtype=float)
        codes: npt.NDArray[np.int64] = np.empty(matrix.shape,
                                                dtype=np.int64)
        for j, edges in enumerate(self.edges_):
            codes[:, j] = np.searchsorted(np.asarray(edges),
                                          matrix[:, j])
        return codes

    def fit_transform(
        self, X: npt.ArrayLike, y: Optional[npt.ArrayLike] = None
    ) -> npt.NDArray[np.int64]:
        return self.fit(X, y).transform(X)

    def spec(self, n_classes: int,
             attribute_names: Optional[Iterable[str]] = None
             ) -> DatasetSpec:
        """A :class:`DatasetSpec` describing the discretised matrix.

        Columns whose discretisation produced no cut (constant or MDL
        rejected everything) still get cardinality 2 so the spec stays
        valid; such attributes simply never split.
        """
        if self.edges_ is None:
            raise ClientError("fit() the discretizer first")
        cards = [max(2, len(edges) + 1) for edges in self.edges_]
        return DatasetSpec(cards, n_classes, attribute_names=attribute_names)
