"""Discretisation of numeric attributes.

The paper assumes "all attributes are categorical or have been
discretized (see [CFB97] for how numeric-valued attributes are
treated)".  This module supplies the missing step: equal-width,
equal-frequency, and Fayyad–Irani entropy/MDL discretisation, plus a
:class:`Discretizer` that converts a numeric matrix into the
categorical codes the rest of the system consumes.
"""

from __future__ import annotations

import math

import numpy as np

from ..common.errors import ClientError
from ..datagen.dataset import DatasetSpec
from .criteria import entropy


def equal_width_edges(values, n_bins):
    """Cut points splitting [min, max] into ``n_bins`` equal intervals."""
    if n_bins < 2:
        raise ClientError("need at least two bins")
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ClientError("cannot discretise an empty column")
    low = float(values.min())
    high = float(values.max())
    if low == high:
        return []
    return list(np.linspace(low, high, n_bins + 1)[1:-1])


def equal_frequency_edges(values, n_bins):
    """Cut points putting ~equal record counts in each bin."""
    if n_bins < 2:
        raise ClientError("need at least two bins")
    values = np.sort(np.asarray(values, dtype=float))
    if values.size == 0:
        raise ClientError("cannot discretise an empty column")
    quantiles = np.linspace(0, 1, n_bins + 1)[1:-1]
    edges = np.quantile(values, quantiles)
    # Collapse duplicate edges (heavy ties) so bins stay distinct.
    unique = []
    for edge in edges:
        if not unique or edge > unique[-1]:
            unique.append(float(edge))
    return unique


def mdl_entropy_edges(values, labels, max_depth=16):
    """Fayyad–Irani recursive entropy discretisation with MDL stopping.

    Candidate cuts are boundary points (midpoints between adjacent
    examples of different classes); a cut is accepted when its
    information gain beats the MDL criterion, and accepted intervals
    are split recursively.
    """
    values = np.asarray(values, dtype=float)
    labels = np.asarray(labels)
    if values.size != labels.size:
        raise ClientError("values and labels must align")
    if values.size == 0:
        raise ClientError("cannot discretise an empty column")
    order = np.argsort(values, kind="stable")
    values = values[order]
    labels = labels[order]
    edges = []
    _mdl_split(values, labels, 0, values.size, edges, max_depth)
    edges.sort()
    return edges


def _mdl_split(values, labels, start, stop, edges, depth):
    if depth <= 0 or stop - start < 4:
        return
    best = _best_cut(values, labels, start, stop)
    if best is None:
        return
    cut_index, gain, cut_value = best
    if not _mdl_accepts(labels, start, stop, cut_index, gain):
        return
    edges.append(cut_value)
    _mdl_split(values, labels, start, cut_index, edges, depth - 1)
    _mdl_split(values, labels, cut_index, stop, edges, depth - 1)


def _class_counts(labels, start, stop):
    counts = {}
    for label in labels[start:stop]:
        counts[label] = counts.get(label, 0) + 1
    return counts


def _best_cut(values, labels, start, stop):
    """Highest-gain boundary cut in [start, stop), or None."""
    n = stop - start
    parent_entropy = entropy(list(_class_counts(labels, start, stop).values()))
    best = None
    left = {}
    right = _class_counts(labels, start, stop)
    for i in range(start, stop - 1):
        label = labels[i]
        left[label] = left.get(label, 0) + 1
        right[label] -= 1
        if values[i] == values[i + 1]:
            continue
        n_left = i - start + 1
        n_right = n - n_left
        gain = parent_entropy - (
            n_left / n * entropy(list(left.values()))
            + n_right / n * entropy(list(right.values()))
        )
        if best is None or gain > best[1]:
            cut_value = (values[i] + values[i + 1]) / 2.0
            best = (i + 1, gain, cut_value)
    return best


def _mdl_accepts(labels, start, stop, cut_index, gain):
    """The Fayyad–Irani MDL acceptance test."""
    n = stop - start
    parent = _class_counts(labels, start, stop)
    left = _class_counts(labels, start, cut_index)
    right = _class_counts(labels, cut_index, stop)
    k = len(parent)
    k_left = len(left)
    k_right = len(right)
    ent = entropy(list(parent.values()))
    ent_left = entropy(list(left.values()))
    ent_right = entropy(list(right.values()))
    delta = (
        math.log2(3**k - 2)
        - (k * ent - k_left * ent_left - k_right * ent_right)
    )
    threshold = (math.log2(n - 1) + delta) / n
    return gain > threshold


class Discretizer:
    """Fit bucket edges on a numeric matrix; transform to codes."""

    METHODS = ("equal_width", "equal_frequency", "mdl")

    def __init__(self, method="equal_width", n_bins=8):
        if method not in self.METHODS:
            raise ClientError(f"method must be one of {self.METHODS}")
        self.method = method
        self.n_bins = n_bins
        self.edges_ = None

    def fit(self, X, y=None):
        """Learn per-column cut points; returns self."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ClientError("X must be a 2-D matrix")
        if self.method == "mdl" and y is None:
            raise ClientError("mdl discretisation requires labels")
        edges = []
        for j in range(X.shape[1]):
            column = X[:, j]
            if self.method == "equal_width":
                edges.append(equal_width_edges(column, self.n_bins))
            elif self.method == "equal_frequency":
                edges.append(equal_frequency_edges(column, self.n_bins))
            else:
                edges.append(mdl_entropy_edges(column, y))
        self.edges_ = edges
        return self

    def transform(self, X):
        """Map numeric values to bucket codes column by column."""
        if self.edges_ is None:
            raise ClientError("fit() the discretizer first")
        X = np.asarray(X, dtype=float)
        codes = np.empty(X.shape, dtype=np.int64)
        for j, edges in enumerate(self.edges_):
            codes[:, j] = np.searchsorted(np.asarray(edges), X[:, j])
        return codes

    def fit_transform(self, X, y=None):
        return self.fit(X, y).transform(X)

    def spec(self, n_classes, attribute_names=None):
        """A :class:`DatasetSpec` describing the discretised matrix.

        Columns whose discretisation produced no cut (constant or MDL
        rejected everything) still get cardinality 2 so the spec stays
        valid; such attributes simply never split.
        """
        if self.edges_ is None:
            raise ClientError("fit() the discretizer first")
        cards = [max(2, len(edges) + 1) for edges in self.edges_]
        return DatasetSpec(cards, n_classes, attribute_names=attribute_names)
