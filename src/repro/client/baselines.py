"""Reference and straw-man classifiers.

* :func:`grow_in_memory` — a plain in-memory grower used as ground
  truth in tests: the middleware-grown tree must be identical.
* :func:`extract_all_fit` — Section 2.3's first straw man: ship the
  entire table to the client and mine locally.
* :func:`sql_counting_fit` — Section 2.3's second straw man: one
  UNION-of-GROUP-BYs statement per active node, no batching, no
  staging (the configuration Fig. 7's right chart shows collapsing).

All three produce trees via the shared :func:`partition_node`, so they
are exactly comparable with the middleware classifier — only the data
access (and hence the cost) differs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Optional, Sequence

from ..core.cc_table import CCTable
from ..core.sql_counting import counts_via_sql
from ..sqlengine.ast_nodes import Select, Star
from .growth import GrowthPolicy, partition_node
from .tree import DecisionTree, TreeNode

if TYPE_CHECKING:
    from ..common.cost import CostMeter, CostModel
    from ..datagen.dataset import DatasetSpec
    from ..sqlengine.database import SQLServer
    from ..sqlengine.expr import Expr


def build_cc_from_rows(rows: Iterable[Sequence[Any]],
                       spec: "DatasetSpec",
                       attributes: Iterable[str]) -> CCTable:
    """Build a CC table locally by scanning ``rows`` once."""
    cc = CCTable(tuple(attributes), spec.n_classes)
    names = spec.attribute_names
    class_index = spec.n_attributes
    for row in rows:
        values = dict(zip(names, row))
        cc.count_row(values, row[class_index])
    return cc


def grow_in_memory(rows: Iterable[Sequence[Any]], spec: "DatasetSpec",
                   policy: GrowthPolicy,
                   meter: Optional["CostMeter"] = None,
                   model: Optional["CostModel"] = None) -> DecisionTree:
    """Grow a tree from rows held in client memory.

    When a meter is supplied, each node's CC construction charges one
    client-side pass over the node's rows at the *file* rate, modelling
    the extracted data sitting in "client secondary storage" (§2.3).
    """
    data = list(rows)
    tree = DecisionTree(spec)
    root = tree.root
    root.n_rows = len(data)

    pending: list[tuple[TreeNode, list[Sequence[Any]]]] = [(root, data)]
    attr_index = {name: i for i, name in enumerate(spec.attribute_names)}
    while pending:
        node, node_rows = pending.pop()
        if meter is not None and model is not None:
            meter.charge(
                "file_read",
                model.file_row_io * len(node_rows),
                events=len(node_rows),
            )
        cc = build_cc_from_rows(node_rows, spec, node.attributes)
        children = partition_node(tree, node, cc, policy)
        if not children:
            continue
        for child in children:
            condition = child.condition
            assert condition is not None  # children carry edge conditions
            index = attr_index[condition.attribute]
            child_rows = [
                row for row in node_rows if condition.matches(row[index])
            ]
            pending.append((child, child_rows))
    return tree


def extract_all_fit(server: "SQLServer", table_name: str,
                    spec: "DatasetSpec",
                    policy: GrowthPolicy) -> DecisionTree:
    """Straw man 1: extract the whole table, then mine at the client.

    Pays one SELECT * (full scan + transfer of every row), then the
    per-level client-side scans of the local copy.
    """
    result = server.execute(Select(Star(), table_name))
    return grow_in_memory(
        result.rows, spec, policy, meter=server.meter, model=server.model
    )


def sql_counting_fit(server: "SQLServer", table_name: str,
                     spec: "DatasetSpec",
                     policy: GrowthPolicy) -> DecisionTree:
    """Straw man 2: per-node UNION-of-GROUP-BYs counting at the server.

    Every active node issues its own CC statement; the server scans the
    table once per attribute per node because its optimizer shares
    nothing between the branches.
    """
    tree = DecisionTree(spec)
    root = tree.root
    root.n_rows = server.table(table_name).row_count

    frontier = [root]
    while frontier:
        node = frontier.pop()
        predicate: Optional["Expr"] = None
        conditions = node.path_conditions()
        if conditions:
            from ..core.filters import path_predicate

            predicate = path_predicate(conditions)
        cc = counts_via_sql(
            server, table_name, spec, node.attributes, predicate
        )
        frontier.extend(partition_node(tree, node, cc, policy))
    return tree
