"""Deploying a trained tree back into the database as SQL.

The natural companion to mining *over* SQL: once the tree exists, its
leaves are decision rules whose paths are WHERE clauses, so scoring a
table reduces to one SELECT per leaf.  ``tree_to_sql`` renders the
model as a UNION ALL of such SELECTs — executable by this package's
SQL engine (which has no CASE expression, like many 1999-era dialects'
restricted middleware surfaces) and trivially portable to any RDBMS.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from ..common.errors import ClientError
from ..sqlengine.ast_nodes import Select, SelectItem, UnionAll
from ..sqlengine.expr import ColumnRef, Literal
from .tree import DecisionTree

if TYPE_CHECKING:
    from ..sqlengine.database import SQLServer
    from ..sqlengine.executor import ResultSet


def leaf_predicates(tree: DecisionTree) -> list[tuple[Optional[str], int]]:
    """``(predicate_sql, label)`` for every leaf, in walk order."""
    out: list[tuple[Optional[str], int]] = []
    for node in tree.walk():
        if not node.is_leaf:
            continue
        conditions = node.path_conditions()
        rendered: Optional[str]
        if conditions:
            rendered = " AND ".join(
                condition.to_expr().to_sql() for condition in conditions
            )
        else:
            rendered = None
        out.append((rendered, node.majority_class))
    return out


def tree_to_statement(
    tree: DecisionTree, table_name: str,
    predicted_column: str = "predicted",
) -> Union[Select, UnionAll]:
    """The scoring statement as an AST (one SELECT branch per leaf).

    Each branch projects the table's attribute columns, the true class,
    and the leaf's label as ``predicted_column``.  Binary-split trees
    partition the attribute space, so the UNION covers every row
    exactly once.
    """
    if not isinstance(tree, DecisionTree):
        raise ClientError("tree_to_statement expects a DecisionTree")
    spec = tree.spec
    if predicted_column in spec.attribute_names:
        raise ClientError(
            f"predicted column {predicted_column!r} collides with an attribute"
        )

    from ..core.filters import path_predicate

    branches: list[Select] = []
    for node in tree.walk():
        if not node.is_leaf:
            continue
        items = [
            SelectItem(ColumnRef(name)) for name in spec.attribute_names
        ]
        items.append(SelectItem(ColumnRef(spec.class_name)))
        items.append(
            SelectItem(Literal(node.majority_class), predicted_column)
        )
        conditions = node.path_conditions()
        where = path_predicate(conditions) if conditions else None
        branches.append(Select(items, table_name, where=where))
    if not branches:
        raise ClientError("tree has no leaves to export")
    if len(branches) == 1:
        return branches[0]
    return UnionAll(branches)


def tree_to_sql(tree: DecisionTree, table_name: str,
                predicted_column: str = "predicted") -> str:
    """The scoring statement as SQL text."""
    return tree_to_statement(tree, table_name, predicted_column).to_sql()


def predict_in_database(server: "SQLServer", table_name: str,
                        tree: DecisionTree,
                        predicted_column: str = "predicted",
                        ) -> "ResultSet":
    """Score ``table_name`` inside the server; returns the ResultSet.

    The result has one row per covered table row, with the predicted
    label in the last column.
    """
    statement = tree_to_statement(tree, table_name, predicted_column)
    return server.execute(statement)


def in_database_accuracy(server: "SQLServer", table_name: str,
                         tree: DecisionTree) -> float:
    """Accuracy of the deployed model over the whole table.

    Raises if the leaf SELECTs do not cover the table exactly once
    (possible for multiway trees applied to values unseen in training —
    those rows fall through every branch).
    """
    result = predict_in_database(server, table_name, tree)
    table = server.table(table_name)
    if len(result) != table.row_count:
        raise ClientError(
            f"deployed tree covered {len(result)} of "
            f"{table.row_count} rows; use client-side prediction for "
            "partial coverage"
        )
    class_index = tree.spec.n_attributes
    hits = sum(1 for row in result if row[class_index] == row[-1])
    return hits / len(result)
