"""Mining clients: decision trees, Naive Bayes, baselines, extensions."""

from .baselines import (
    build_cc_from_rows,
    extract_all_fit,
    grow_in_memory,
    sql_counting_fit,
)
from .criteria import (
    ChiSquare,
    GainRatio,
    GiniGain,
    InformationGain,
    SplitCriterion,
    entropy,
    gini,
    make_criterion,
)
from .evaluation import (
    ClassReport,
    EvaluationReport,
    confusion_matrix,
    cross_validate,
    evaluate,
    train_test_split,
)
from .export import (
    in_database_accuracy,
    leaf_predicates,
    predict_in_database,
    tree_to_sql,
    tree_to_statement,
)
from .decision_tree import DecisionTreeClassifier
from .discretize import (
    Discretizer,
    equal_frequency_edges,
    equal_width_edges,
    mdl_entropy_edges,
)
from .growth import GrowthPolicy, is_terminal_before_counting, partition_node
from .naive_bayes import NaiveBayesClassifier
from .prune import pessimistic_errors, prune
from .rules import Rule, RuleList, extract_rules, simplify_conditions
from .serialize import (
    load_naive_bayes,
    load_tree,
    naive_bayes_from_dict,
    naive_bayes_to_dict,
    save_naive_bayes,
    save_tree,
    tree_from_dict,
    tree_to_dict,
)
from .splits import (
    CandidateSplit,
    ChildSpec,
    best_split,
    child_attributes,
    enumerate_binary_splits,
    enumerate_multiway_split,
)
from .tree import DecisionTree, NodeState, TreeNode

__all__ = [
    "CandidateSplit",
    "ChiSquare",
    "ClassReport",
    "EvaluationReport",
    "confusion_matrix",
    "cross_validate",
    "evaluate",
    "in_database_accuracy",
    "leaf_predicates",
    "predict_in_database",
    "train_test_split",
    "tree_to_sql",
    "tree_to_statement",
    "ChildSpec",
    "DecisionTree",
    "DecisionTreeClassifier",
    "Discretizer",
    "GainRatio",
    "GiniGain",
    "GrowthPolicy",
    "InformationGain",
    "NaiveBayesClassifier",
    "NodeState",
    "SplitCriterion",
    "TreeNode",
    "best_split",
    "build_cc_from_rows",
    "child_attributes",
    "entropy",
    "enumerate_binary_splits",
    "enumerate_multiway_split",
    "equal_frequency_edges",
    "equal_width_edges",
    "extract_all_fit",
    "gini",
    "grow_in_memory",
    "is_terminal_before_counting",
    "make_criterion",
    "mdl_entropy_edges",
    "partition_node",
    "pessimistic_errors",
    "Rule",
    "RuleList",
    "extract_rules",
    "simplify_conditions",
    "load_naive_bayes",
    "load_tree",
    "naive_bayes_from_dict",
    "naive_bayes_to_dict",
    "save_naive_bayes",
    "save_tree",
    "tree_from_dict",
    "tree_to_dict",
    "prune",
    "sql_counting_fit",
]
