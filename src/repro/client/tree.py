"""Decision tree structure maintained by the mining client.

The client (not the middleware) owns the tree: node states follow the
paper's taxonomy — *active* (awaiting its CC table), *partitioned*
(children created) and *leaf* — and every node records the exact data
size and class distribution it inherited from its parent's CC table.
"""

from __future__ import annotations

import enum
from typing import (
    TYPE_CHECKING,
    Any,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    cast,
)

from ..common.errors import ClientError
from ..core.filters import PathCondition

if TYPE_CHECKING:
    from ..datagen.dataset import DatasetSpec


class NodeState(enum.Enum):
    """Lifecycle of a tree node (Section 2.1)."""

    ACTIVE = "active"
    PARTITIONED = "partitioned"
    LEAF = "leaf"


class TreeNode:
    """One node of the decision tree."""

    __slots__ = (
        "node_id",
        "parent",
        "condition",
        "depth",
        "n_rows",
        "class_counts",
        "attributes",
        "state",
        "children",
        "split_attribute",
        "split_kind",
        "location_tag",
    )

    def __init__(self, node_id: int, parent: Optional["TreeNode"],
                 condition: Optional[PathCondition],
                 n_rows: Optional[int],
                 class_counts: Optional[Iterable[int]],
                 attributes: Iterable[str]) -> None:
        self.node_id = node_id
        self.parent = parent
        #: Edge condition from the parent (None at the root).
        self.condition = condition
        self.depth = 0 if parent is None else parent.depth + 1
        self.n_rows = n_rows
        #: Exact per-class record counts (from the parent's CC table).
        self.class_counts = list(class_counts) if class_counts else None
        #: Attributes still present (not fixed by the path).
        self.attributes = tuple(attributes)
        self.state = NodeState.ACTIVE
        self.children: list[TreeNode] = []
        self.split_attribute: Optional[str] = None
        self.split_kind: Optional[str] = None
        #: The paper's S/I/L display prefix, recorded when counted.
        self.location_tag: Optional[str] = None

    @property
    def is_leaf(self) -> bool:
        return self.state is NodeState.LEAF

    @property
    def is_pure(self) -> bool:
        """True when all records belong to one class."""
        if self.class_counts is None:
            return False
        return sum(1 for c in self.class_counts if c > 0) <= 1

    @property
    def majority_class(self) -> int:
        """The class assigned if this node becomes (or is) a leaf."""
        if self.class_counts is None:
            raise ClientError("node has no class distribution yet")
        best = max(self.class_counts)
        return self.class_counts.index(best)

    def lineage(self) -> tuple[int, ...]:
        """Node ids from the root down to this node, inclusive."""
        chain: list[int] = []
        node: Optional[TreeNode] = self
        while node is not None:
            chain.append(node.node_id)
            node = node.parent
        chain.reverse()
        return tuple(chain)

    def path_conditions(self) -> list[PathCondition]:
        """The edge conditions from the root to this node."""
        conditions: list[PathCondition] = []
        node = self
        while node.parent is not None:
            # Invariant: every non-root node carries an edge condition.
            assert node.condition is not None
            conditions.append(node.condition)
            node = node.parent
        conditions.reverse()
        return conditions

    def mark_leaf(self) -> None:
        self.state = NodeState.LEAF

    def __repr__(self) -> str:
        return (
            f"TreeNode(id={self.node_id}, state={self.state.value}, "
            f"rows={self.n_rows}, depth={self.depth})"
        )


class DecisionTree:
    """The client's model: nodes, structure and prediction."""

    def __init__(self, spec: "DatasetSpec") -> None:
        self.spec = spec
        self._counter = 0
        self.nodes: dict[int, TreeNode] = {}
        usable = [
            name
            for name in spec.attribute_names
            if spec.cardinality(name) >= 2
        ]
        self.root = self._new_node(None, None, None, None, usable)

    def _new_node(self, parent: Optional[TreeNode],
                  condition: Optional[PathCondition],
                  n_rows: Optional[int],
                  class_counts: Optional[Iterable[int]],
                  attributes: Iterable[str]) -> TreeNode:
        node_id = self._counter
        self._counter += 1
        node = TreeNode(
            node_id, parent, condition, n_rows, class_counts, attributes
        )
        self.nodes[node_id] = node
        if parent is not None:
            parent.children.append(node)
        return node

    def add_child(self, parent: TreeNode, condition: PathCondition,
                  n_rows: Optional[int],
                  class_counts: Optional[Iterable[int]],
                  attributes: Iterable[str]) -> TreeNode:
        """Create a child under ``parent`` with exact statistics."""
        if not isinstance(condition, PathCondition):
            raise ClientError("child nodes need a PathCondition edge")
        return self._new_node(parent, condition, n_rows, class_counts,
                              attributes)

    # -- structure queries --------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def leaves(self) -> list[TreeNode]:
        return [n for n in self.nodes.values() if n.is_leaf]

    @property
    def n_leaves(self) -> int:
        return len(self.leaves())

    @property
    def depth(self) -> int:
        return max(node.depth for node in self.nodes.values())

    def walk(self) -> Iterator[TreeNode]:
        """Yield nodes depth-first, children in creation order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    # -- prediction -----------------------------------------------------------

    def predict_values(self,
                       values_by_attribute: Mapping[str, Any]) -> int:
        """Class label for one record given as an attribute dict.

        Descends edge conditions; a value no branch accepts (possible
        for data unseen during growth) falls back to the majority class
        of the deepest node reached.
        """
        node = self.root
        while not node.is_leaf and node.children:
            value = values_by_attribute.get(cast(str, node.split_attribute))
            chosen: Optional[TreeNode] = None
            for child in node.children:
                if child.condition is not None and \
                        child.condition.matches(value):
                    chosen = child
                    break
            if chosen is None:
                return node.majority_class
            node = chosen
        return node.majority_class

    def predict_row(self, row: Sequence[Any]) -> int:
        """Class label for one data row (attribute codes, class last
        position ignored if present)."""
        values = dict(zip(self.spec.attribute_names, row))
        return self.predict_values(values)

    def predict(self, rows: Iterable[Sequence[Any]]) -> list[int]:
        """Labels for many rows."""
        return [self.predict_row(row) for row in rows]

    def accuracy(self, rows: Iterable[Sequence[Any]]) -> float:
        """Fraction of rows whose last value matches the prediction."""
        rows = list(rows)
        if not rows:
            raise ClientError("cannot score an empty data set")
        hits = sum(
            1 for row in rows if self.predict_row(row) == row[-1]
        )
        return hits / len(rows)

    # -- interpretation ----------------------------------------------------------

    def rules(
        self,
    ) -> list[tuple[list[PathCondition], int, Optional[int]]]:
        """Leaves as decision rules: (conditions, class, support)."""
        out: list[tuple[list[PathCondition], int, Optional[int]]] = []
        for node in self.walk():
            if node.is_leaf:
                out.append(
                    (node.path_conditions(), node.majority_class, node.n_rows)
                )
        return out

    def render(self, max_depth: Optional[int] = None) -> str:
        """ASCII rendering of the tree (Fig. 1 style, with S/I/L tags)."""
        lines: list[str] = []

        def visit(node: TreeNode, indent: str) -> None:
            if max_depth is not None and node.depth > max_depth:
                return
            tag = f"{node.location_tag}-" if node.location_tag else ""
            if node.condition is None:
                label = "(root)"
            else:
                c = node.condition
                label = f"{c.attribute} {c.op} {c.value}"
            if node.is_leaf:
                suffix = f"leaf class={node.majority_class}"
            else:
                suffix = f"split on {node.split_attribute}"
            rows = node.n_rows if node.n_rows is not None else "?"
            lines.append(
                f"{indent}{tag}{node.node_id} [{label}] "
                f"rows={rows} {suffix}"
            )
            for child in node.children:
                visit(child, indent + "  ")

        visit(self.root, "")
        return "\n".join(lines)

    def to_dot(self, max_depth: Optional[int] = None,
               class_names: Optional[Sequence[str]] = None) -> str:
        """The tree as Graphviz DOT text (``dot -Tpng`` renders it).

        Internal nodes show their split attribute and size; leaves show
        their class and support; edges carry the branch conditions.
        """
        lines = [
            "digraph decision_tree {",
            '  node [shape=box, fontname="Helvetica"];',
        ]

        def label_for(node: TreeNode) -> str:
            rows = node.n_rows if node.n_rows is not None else "?"
            if node.is_leaf:
                label = (
                    class_names[node.majority_class]
                    if class_names
                    else f"class {node.majority_class}"
                )
                return f"{label}\\n{rows} rows"
            return f"{node.split_attribute}?\\n{rows} rows"

        def visit(node: TreeNode) -> None:
            if max_depth is not None and node.depth > max_depth:
                return
            shape = ', style=filled, fillcolor="#e8f0fe"' if node.is_leaf else ""
            lines.append(
                f'  n{node.node_id} [label="{label_for(node)}"{shape}];'
            )
            for child in node.children:
                if max_depth is not None and child.depth > max_depth:
                    continue
                c = child.condition
                assert c is not None  # only the root lacks a condition
                lines.append(
                    f"  n{node.node_id} -> n{child.node_id} "
                    f'[label="{c.op} {c.value}"];'
                )
                visit(child)

        visit(self.root)
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"DecisionTree(nodes={self.n_nodes}, leaves={self.n_leaves}, "
            f"depth={self.depth})"
        )
