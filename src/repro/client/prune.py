"""Pessimistic (error-based) pruning — C4.5 style.

The paper grew full, unpruned trees ("We did not implement any tree
pruning criteria... This can be easily implemented in our scheme");
this module is that easy extension.  It needs only the class counts
already stored at every node, so pruning never touches data either.

A subtree is replaced by a leaf when the leaf's pessimistic error
estimate (upper confidence bound of the binomial error rate at
confidence ``cf``) does not exceed the sum of its children's estimates.
"""

from __future__ import annotations

import math

from ..common.errors import ClientError
from .tree import DecisionTree, NodeState, TreeNode

#: z-scores for the one-sided upper confidence bound at common levels.
_Z_BY_CF: dict[float, float] = {0.10: 1.2816, 0.25: 0.6745, 0.50: 0.0}


def _z_for(cf: float) -> float:
    try:
        return _Z_BY_CF[cf]
    except KeyError:
        raise ClientError(
            f"confidence must be one of {sorted(_Z_BY_CF)}"
        ) from None


def pessimistic_errors(n_rows: int, n_errors: float,
                       cf: float = 0.25) -> float:
    """Wilson upper bound on errors among ``n_rows`` records.

    This is the normal-approximation upper confidence limit C4.5 uses;
    returned as an *error count* (rate × n_rows).
    """
    if n_rows == 0:
        return 0.0
    z = _z_for(cf)
    if z == 0.0:
        return float(n_errors)
    f = n_errors / n_rows
    z2 = z * z
    numerator = (
        f
        + z2 / (2 * n_rows)
        + z * math.sqrt(
            f / n_rows - f * f / n_rows + z2 / (4 * n_rows * n_rows)
        )
    )
    rate = numerator / (1 + z2 / n_rows)
    return rate * n_rows


def node_leaf_errors(node: TreeNode, cf: float = 0.25) -> float:
    """Pessimistic error count if ``node`` were a leaf."""
    if node.class_counts is None:
        raise ClientError("node has no class distribution")
    n = sum(node.class_counts)
    errors = n - max(node.class_counts)
    return pessimistic_errors(n, errors, cf)


def prune(tree: DecisionTree, cf: float = 0.25) -> int:
    """Prune ``tree`` in place bottom-up; returns nodes pruned.

    After pruning, collapsed internal nodes become leaves and their
    descendants are removed from the tree's node registry.
    """
    pruned = 0

    def visit(node: TreeNode) -> float:
        nonlocal pruned
        if node.is_leaf:
            return node_leaf_errors(node, cf)
        subtree_errors = sum(visit(child) for child in node.children)
        as_leaf = node_leaf_errors(node, cf)
        if as_leaf <= subtree_errors:
            _collapse(tree, node)
            pruned += 1
            return as_leaf
        return subtree_errors

    visit(tree.root)
    return pruned


def _collapse(tree: DecisionTree, node: TreeNode) -> None:
    """Turn ``node`` into a leaf, removing its subtree."""
    stack = list(node.children)
    while stack:
        descendant = stack.pop()
        stack.extend(descendant.children)
        del tree.nodes[descendant.node_id]
    node.children = []
    node.split_attribute = None
    node.split_kind = None
    node.state = NodeState.LEAF
