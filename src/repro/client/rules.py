"""Decision rules: extraction, simplification, and a rule-list model.

The paper motivates decision trees because "the leaves, represented as
decision rules, are more easily understood by domain experts".  This
module makes that representation first-class:

* extract one rule per leaf, with support and confidence from the
  exact class counts the tree already stores;
* *simplify* each rule by dropping conditions that are redundant given
  the others (e.g. ``A <> 1 AND A = 2`` keeps only ``A = 2``; a chain
  of ``<>`` exclusions covering all but one value collapses to ``=``);
* assemble an ordered :class:`RuleList` classifier that predicts by
  first match — equivalent to the tree on every input the tree covers.
"""

from __future__ import annotations

from ..common.errors import ClientError
from ..core.filters import PathCondition


class Rule:
    """One decision rule: conditions → label, with quality measures."""

    __slots__ = ("conditions", "label", "support", "confidence")

    def __init__(self, conditions, label, support, confidence):
        self.conditions = tuple(conditions)
        self.label = label
        self.support = support
        self.confidence = confidence

    def matches(self, values_by_attribute):
        """True if a record satisfies every condition."""
        return all(
            condition.matches(values_by_attribute.get(condition.attribute))
            for condition in self.conditions
        )

    def render(self, class_names=None):
        """Human-readable IF/THEN text."""
        if self.conditions:
            path = " AND ".join(
                f"{c.attribute} {c.op} {c.value}" for c in self.conditions
            )
        else:
            path = "TRUE"
        label = (
            class_names[self.label] if class_names else f"class {self.label}"
        )
        return (
            f"IF {path} THEN {label} "
            f"[support={self.support}, confidence={self.confidence:.3f}]"
        )

    def __repr__(self):
        return f"Rule({self.render()})"


def simplify_conditions(conditions, spec):
    """Drop conditions made redundant by the others on the same path.

    Per attribute:

    * an equality pins the value — every other condition on that
      attribute is redundant (tree paths never contradict themselves);
    * duplicate exclusions collapse;
    * exclusions covering all but one of the attribute's values
      collapse into a single equality on the survivor.
    """
    by_attribute = {}
    order = []
    for condition in conditions:
        if condition.attribute not in by_attribute:
            by_attribute[condition.attribute] = []
            order.append(condition.attribute)
        by_attribute[condition.attribute].append(condition)

    simplified = []
    for attribute in order:
        parts = by_attribute[attribute]
        pinned = [c for c in parts if c.op == "="]
        if pinned:
            simplified.append(pinned[0])
            continue
        excluded = []
        seen = set()
        for condition in parts:
            if condition.value not in seen:
                seen.add(condition.value)
                excluded.append(condition)
        card = spec.cardinality(attribute)
        survivors = [v for v in range(card) if v not in seen]
        if len(survivors) == 1:
            simplified.append(
                PathCondition(attribute, "=", survivors[0])
            )
        else:
            simplified.extend(excluded)
    return simplified


def extract_rules(tree, simplify=True, sort_by="support"):
    """One :class:`Rule` per leaf of ``tree``.

    ``sort_by`` orders the list: "support" (descending), "confidence"
    (descending, then support), or None for tree walk order.
    """
    spec = tree.spec
    rules = []
    for node in tree.walk():
        if not node.is_leaf:
            continue
        if node.class_counts is None:
            raise ClientError("leaf without class counts cannot be a rule")
        conditions = node.path_conditions()
        if simplify:
            conditions = simplify_conditions(conditions, spec)
        total = sum(node.class_counts)
        winner = max(node.class_counts)
        confidence = winner / total if total else 0.0
        rules.append(
            Rule(conditions, node.majority_class, node.n_rows, confidence)
        )
    if sort_by == "support":
        rules.sort(key=lambda r: -r.support)
    elif sort_by == "confidence":
        rules.sort(key=lambda r: (-r.confidence, -r.support))
    elif sort_by is not None:
        raise ClientError(f"unknown sort key: {sort_by!r}")
    return rules


class RuleList:
    """An ordered first-match rule classifier with a default label."""

    def __init__(self, rules, default_label, spec):
        self.rules = list(rules)
        self.default_label = default_label
        self.spec = spec

    @classmethod
    def from_tree(cls, tree, simplify=True, sort_by="support"):
        """Build a rule list equivalent to ``tree`` on covered inputs."""
        rules = extract_rules(tree, simplify=simplify, sort_by=sort_by)
        return cls(rules, tree.root.majority_class, tree.spec)

    def predict_values(self, values_by_attribute):
        for rule in self.rules:
            if rule.matches(values_by_attribute):
                return rule.label
        return self.default_label

    def predict_row(self, row):
        values = dict(zip(self.spec.attribute_names, row))
        return self.predict_values(values)

    def predict(self, rows):
        return [self.predict_row(row) for row in rows]

    def accuracy(self, rows):
        rows = list(rows)
        if not rows:
            raise ClientError("cannot score an empty data set")
        hits = sum(1 for row in rows if self.predict_row(row) == row[-1])
        return hits / len(rows)

    def render(self, class_names=None, limit=None):
        """The rule list as text, optionally truncated."""
        rules = self.rules if limit is None else self.rules[:limit]
        lines = [rule.render(class_names) for rule in rules]
        if limit is not None and len(self.rules) > limit:
            lines.append(f"... and {len(self.rules) - limit} more rules")
        lines.append(f"DEFAULT class {self.default_label}")
        return "\n".join(lines)

    def __len__(self):
        return len(self.rules)

    def __repr__(self):
        return f"RuleList(rules={len(self.rules)})"
