"""Decision rules: extraction, simplification, and a rule-list model.

The paper motivates decision trees because "the leaves, represented as
decision rules, are more easily understood by domain experts".  This
module makes that representation first-class:

* extract one rule per leaf, with support and confidence from the
  exact class counts the tree already stores;
* *simplify* each rule by dropping conditions that are redundant given
  the others (e.g. ``A <> 1 AND A = 2`` keeps only ``A = 2``; a chain
  of ``<>`` exclusions covering all but one value collapses to ``=``);
* assemble an ordered :class:`RuleList` classifier that predicts by
  first match — equivalent to the tree on every input the tree covers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional, Sequence

from ..common.errors import ClientError
from ..core.filters import PathCondition
from .tree import DecisionTree

if TYPE_CHECKING:
    from ..datagen.dataset import DatasetSpec


class Rule:
    """One decision rule: conditions → label, with quality measures."""

    __slots__ = ("conditions", "label", "support", "confidence")

    def __init__(self, conditions: Iterable[PathCondition], label: int,
                 support: int, confidence: float) -> None:
        self.conditions = tuple(conditions)
        self.label = label
        self.support = support
        self.confidence = confidence

    def matches(self, values_by_attribute: Mapping[str, Any]) -> bool:
        """True if a record satisfies every condition."""
        return all(
            condition.matches(values_by_attribute.get(condition.attribute))
            for condition in self.conditions
        )

    def render(self, class_names: Optional[Sequence[str]] = None) -> str:
        """Human-readable IF/THEN text."""
        if self.conditions:
            path = " AND ".join(
                f"{c.attribute} {c.op} {c.value}" for c in self.conditions
            )
        else:
            path = "TRUE"
        label = (
            class_names[self.label] if class_names else f"class {self.label}"
        )
        return (
            f"IF {path} THEN {label} "
            f"[support={self.support}, confidence={self.confidence:.3f}]"
        )

    def __repr__(self) -> str:
        return f"Rule({self.render()})"


def simplify_conditions(conditions: Iterable[PathCondition],
                        spec: "DatasetSpec") -> list[PathCondition]:
    """Drop conditions made redundant by the others on the same path.

    Per attribute:

    * an equality pins the value — every other condition on that
      attribute is redundant (tree paths never contradict themselves);
    * duplicate exclusions collapse;
    * exclusions covering all but one of the attribute's values
      collapse into a single equality on the survivor.
    """
    by_attribute: dict[str, list[PathCondition]] = {}
    order: list[str] = []
    for condition in conditions:
        if condition.attribute not in by_attribute:
            by_attribute[condition.attribute] = []
            order.append(condition.attribute)
        by_attribute[condition.attribute].append(condition)

    simplified: list[PathCondition] = []
    for attribute in order:
        parts = by_attribute[attribute]
        pinned = [c for c in parts if c.op == "="]
        if pinned:
            simplified.append(pinned[0])
            continue
        excluded: list[PathCondition] = []
        seen: set[object] = set()
        for condition in parts:
            if condition.value not in seen:
                seen.add(condition.value)
                excluded.append(condition)
        card = spec.cardinality(attribute)
        survivors = [v for v in range(card) if v not in seen]
        if len(survivors) == 1:
            simplified.append(
                PathCondition(attribute, "=", survivors[0])
            )
        else:
            simplified.extend(excluded)
    return simplified


def extract_rules(tree: DecisionTree, simplify: bool = True,
                  sort_by: Optional[str] = "support") -> list[Rule]:
    """One :class:`Rule` per leaf of ``tree``.

    ``sort_by`` orders the list: "support" (descending), "confidence"
    (descending, then support), or None for tree walk order.
    """
    spec = tree.spec
    rules: list[Rule] = []
    for node in tree.walk():
        if not node.is_leaf:
            continue
        if node.class_counts is None:
            raise ClientError("leaf without class counts cannot be a rule")
        conditions = node.path_conditions()
        if simplify:
            conditions = simplify_conditions(conditions, spec)
        total = sum(node.class_counts)
        winner = max(node.class_counts)
        confidence = winner / total if total else 0.0
        # A leaf's support is its row count; the class-count total is
        # the same figure and covers hand-built trees without n_rows.
        support = node.n_rows if node.n_rows is not None else total
        rules.append(
            Rule(conditions, node.majority_class, support, confidence)
        )
    if sort_by == "support":
        rules.sort(key=lambda r: -r.support)
    elif sort_by == "confidence":
        rules.sort(key=lambda r: (-r.confidence, -r.support))
    elif sort_by is not None:
        raise ClientError(f"unknown sort key: {sort_by!r}")
    return rules


class RuleList:
    """An ordered first-match rule classifier with a default label."""

    def __init__(self, rules: Iterable[Rule], default_label: int,
                 spec: "DatasetSpec") -> None:
        self.rules = list(rules)
        self.default_label = default_label
        self.spec = spec

    @classmethod
    def from_tree(cls, tree: DecisionTree, simplify: bool = True,
                  sort_by: Optional[str] = "support") -> "RuleList":
        """Build a rule list equivalent to ``tree`` on covered inputs."""
        rules = extract_rules(tree, simplify=simplify, sort_by=sort_by)
        return cls(rules, tree.root.majority_class, tree.spec)

    def predict_values(self,
                       values_by_attribute: Mapping[str, Any]) -> int:
        for rule in self.rules:
            if rule.matches(values_by_attribute):
                return rule.label
        return self.default_label

    def predict_row(self, row: Sequence[Any]) -> int:
        values = dict(zip(self.spec.attribute_names, row))
        return self.predict_values(values)

    def predict(self, rows: Iterable[Sequence[Any]]) -> list[int]:
        return [self.predict_row(row) for row in rows]

    def accuracy(self, rows: Iterable[Sequence[Any]]) -> float:
        data = list(rows)
        if not data:
            raise ClientError("cannot score an empty data set")
        hits = sum(1 for row in data if self.predict_row(row) == row[-1])
        return hits / len(data)

    def render(self, class_names: Optional[Sequence[str]] = None,
               limit: Optional[int] = None) -> str:
        """The rule list as text, optionally truncated."""
        rules = self.rules if limit is None else self.rules[:limit]
        lines = [rule.render(class_names) for rule in rules]
        if limit is not None and len(self.rules) > limit:
            lines.append(f"... and {len(self.rules) - limit} more rules")
        lines.append(f"DEFAULT class {self.default_label}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        return f"RuleList(rules={len(self.rules)})"
