"""Model evaluation: splits, confusion matrices, cross-validation.

Utilities a downstream user needs to assess the classifiers this
package produces.  Everything operates on plain data rows (attribute
codes with the class label last), matching the generators' output.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Optional, Sequence

from ..common.errors import ClientError
from .baselines import grow_in_memory
from .growth import GrowthPolicy

if TYPE_CHECKING:
    from ..datagen.dataset import DatasetSpec

#: One data record: attribute codes with the class label last.
DataRow = Sequence[Any]


def train_test_split(
    rows: Iterable[DataRow], test_fraction: float = 0.25, seed: int = 0
) -> tuple[list[DataRow], list[DataRow]]:
    """Shuffle and split rows into ``(train, test)``."""
    if not 0.0 < test_fraction < 1.0:
        raise ClientError("test_fraction must be within (0, 1)")
    data = list(rows)
    if len(data) < 2:
        raise ClientError("need at least two rows to split")
    rng = random.Random(seed)
    rng.shuffle(data)
    cut = max(1, int(len(data) * test_fraction))
    return data[cut:], data[:cut]


def confusion_matrix(y_true: Iterable[int], y_pred: Iterable[int],
                     n_classes: int) -> list[list[int]]:
    """``matrix[actual][predicted]`` counts."""
    actuals = list(y_true)
    predictions = list(y_pred)
    if len(actuals) != len(predictions):
        raise ClientError("label sequences must align")
    matrix = [[0] * n_classes for _ in range(n_classes)]
    for actual, predicted in zip(actuals, predictions):
        if not (0 <= actual < n_classes and 0 <= predicted < n_classes):
            raise ClientError("label outside [0, n_classes)")
        matrix[actual][predicted] += 1
    return matrix


@dataclass
class ClassReport:
    """Per-class precision / recall / F1."""

    label: int
    precision: float
    recall: float
    f1: float
    support: int


@dataclass
class EvaluationReport:
    """Full evaluation of a classifier on one data set."""

    accuracy: float
    matrix: list[list[int]]
    per_class: list[ClassReport] = field(default_factory=list)

    @property
    def macro_f1(self) -> float:
        """Unweighted mean F1 over classes that appear in the data."""
        present = [c for c in self.per_class if c.support > 0]
        if not present:
            return 0.0
        return sum(c.f1 for c in present) / len(present)

    def __str__(self) -> str:
        lines = [f"accuracy: {self.accuracy:.4f}   macro-F1: {self.macro_f1:.4f}"]
        for entry in self.per_class:
            lines.append(
                f"  class {entry.label}: precision={entry.precision:.3f} "
                f"recall={entry.recall:.3f} f1={entry.f1:.3f} "
                f"support={entry.support}"
            )
        return "\n".join(lines)


def evaluate(model: Any, rows: Iterable[DataRow],
             n_classes: int) -> EvaluationReport:
    """Evaluate a fitted model (anything with ``predict_row``)."""
    data = list(rows)
    if not data:
        raise ClientError("cannot evaluate on an empty data set")
    y_true = [row[-1] for row in data]
    y_pred = [model.predict_row(row) for row in data]
    matrix = confusion_matrix(y_true, y_pred, n_classes)

    hits = sum(matrix[c][c] for c in range(n_classes))
    per_class: list[ClassReport] = []
    for label in range(n_classes):
        support = sum(matrix[label])
        predicted = sum(matrix[row][label] for row in range(n_classes))
        true_positive = matrix[label][label]
        precision = true_positive / predicted if predicted else 0.0
        recall = true_positive / support if support else 0.0
        if precision + recall > 0:
            f1 = 2 * precision * recall / (precision + recall)
        else:
            f1 = 0.0
        per_class.append(
            ClassReport(label, precision, recall, f1, support)
        )
    return EvaluationReport(hits / len(data), matrix, per_class)


def cross_validate(rows: Iterable[DataRow], spec: "DatasetSpec",
                   policy: Optional[GrowthPolicy] = None, k: int = 5,
                   seed: int = 0) -> list[float]:
    """k-fold cross-validation of the decision-tree grower.

    Grows each fold's tree with the in-memory reference grower — the
    integration suite proves it identical to the middleware-grown tree,
    so the measured accuracy transfers exactly.  Returns the list of
    per-fold test accuracies.
    """
    if k < 2:
        raise ClientError("cross-validation needs k >= 2")
    data = list(rows)
    if len(data) < k:
        raise ClientError("need at least one row per fold")
    policy = policy or GrowthPolicy()
    rng = random.Random(seed)
    rng.shuffle(data)

    folds = [data[i::k] for i in range(k)]
    accuracies: list[float] = []
    for held_out in range(k):
        test = folds[held_out]
        train = [
            row
            for i, fold in enumerate(folds)
            if i != held_out
            for row in fold
        ]
        tree = grow_in_memory(train, spec, policy)
        accuracies.append(tree.accuracy(test))
    return accuracies
