"""Naive Bayes over the middleware.

The paper notes that "other classification algorithms such as Naive
Bayes can also plug-in to this architecture": Naive Bayes is driven by
exactly one CC table — the root's — since
``P(A = v | C = c)`` is ``count(A, v, c) / count(c)``.  This client
issues that single request and never touches data.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional, Sequence

from ..common.errors import ClientError, NotFittedError
from ..core.estimators import root_cc_pairs
from ..core.requests import CountsRequest

if TYPE_CHECKING:
    from ..core.cc_table import CCTable
    from ..core.middleware import Middleware
    from ..datagen.dataset import DatasetSpec


class NaiveBayesClassifier:
    """Multinomial Naive Bayes with Laplace smoothing."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha < 0:
            raise ClientError("smoothing alpha must be non-negative")
        self.alpha = alpha
        self._spec: Optional["DatasetSpec"] = None
        self._log_priors: Optional[list[float]] = None
        #: (attribute, value, class) -> log probability
        self._log_likelihoods: Optional[dict[tuple[str, Any, int],
                                            float]] = None
        self._class_counts: Optional[list[int]] = None
        self._attributes: tuple[str, ...] = ()

    def fit(self, middleware: "Middleware") -> "NaiveBayesClassifier":
        """Request the root CC table and derive the model; returns self."""
        spec = middleware.spec
        attributes = tuple(
            name for name in spec.attribute_names
            if spec.cardinality(name) >= 2
        )
        n_rows = middleware.server.table(middleware.table_name).row_count
        request = CountsRequest(
            node_id="nb-root",
            lineage=("nb-root",),
            conditions=(),
            attributes=attributes,
            n_rows=n_rows,
            est_cc_pairs=root_cc_pairs(spec, attributes),
        )
        middleware.queue_request(request)
        (result,) = middleware.process_next_batch()
        self._build_model(spec, attributes, result.cc)
        return self

    def fit_from_cc(self, spec: "DatasetSpec",
                    cc: "CCTable") -> "NaiveBayesClassifier":
        """Build the model from an existing root CC table (offline path)."""
        self._build_model(spec, cc.attributes, cc)
        return self

    def _build_model(self, spec: "DatasetSpec",
                     attributes: Iterable[str], cc: "CCTable") -> None:
        totals = cc.class_totals()
        n = cc.records
        if n == 0:
            raise ClientError("cannot fit Naive Bayes on an empty table")
        alpha = self.alpha
        n_classes = spec.n_classes

        self._log_priors = [
            math.log((totals[c] + alpha) / (n + alpha * n_classes))
            for c in range(n_classes)
        ]
        likelihoods: dict[tuple[str, Any, int], float] = {}
        for attribute in attributes:
            card = spec.cardinality(attribute)
            for value in range(card):
                vector = cc.vector(attribute, value)
                for c in range(n_classes):
                    likelihoods[(attribute, value, c)] = math.log(
                        (vector[c] + alpha) / (totals[c] + alpha * card)
                    )
        self._log_likelihoods = likelihoods
        self._class_counts = totals
        self._spec = spec
        self._attributes = tuple(attributes)

    # -- prediction ---------------------------------------------------------

    def _require_fitted(self) -> None:
        if self._log_priors is None:
            raise NotFittedError("call fit() before predicting")

    def predict_values(self,
                       values_by_attribute: Mapping[str, Any]) -> int:
        """Most probable class for an attribute dict."""
        self._require_fitted()
        assert self._log_priors is not None
        assert self._log_likelihoods is not None
        best_class = 0
        best_score = -math.inf
        lookup = self._log_likelihoods
        for c, prior in enumerate(self._log_priors):
            score = prior
            for attribute in self._attributes:
                value = values_by_attribute[attribute]
                term = lookup.get((attribute, value, c))
                if term is not None:
                    score += term
            if score > best_score:
                best_score = score
                best_class = c
        return best_class

    def predict_row(self, row: Sequence[Any]) -> int:
        self._require_fitted()
        assert self._spec is not None
        values = dict(zip(self._spec.attribute_names, row))
        return self.predict_values(values)

    def predict(self, rows: Iterable[Sequence[Any]]) -> list[int]:
        return [self.predict_row(row) for row in rows]

    def accuracy(self, rows: Iterable[Sequence[Any]]) -> float:
        data = list(rows)
        if not data:
            raise ClientError("cannot score an empty data set")
        hits = sum(1 for row in data if self.predict_row(row) == row[-1])
        return hits / len(data)

    def class_log_prior(self, c: int) -> float:
        self._require_fitted()
        assert self._log_priors is not None
        return self._log_priors[c]

    def __repr__(self) -> str:
        if self._log_priors is None:
            return "NaiveBayesClassifier(unfitted)"
        return (
            f"NaiveBayesClassifier(classes={len(self._log_priors)}, "
            f"alpha={self.alpha})"
        )
