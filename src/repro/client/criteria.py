"""Splitting criteria, computed from CC tables only (Section 2.2).

Every criterion scores a partition of a node's records from the class
distributions of the would-be children — which the CC table provides
exactly — so no criterion ever touches data.  The paper's experiments
use "the standard entropy measure used in ID3, C4.5, and CART"; Gini
and gain ratio are provided for the broader family the scheme supports.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

from ..common.errors import ClientError


def entropy(counts: Sequence[float]) -> float:
    """Shannon entropy (bits) of a class-count vector."""
    total = sum(counts)
    if total == 0:
        return 0.0
    result = 0.0
    for count in counts:
        if count:
            p = count / total
            result -= p * math.log2(p)
    return result


def gini(counts: Sequence[float]) -> float:
    """Gini impurity of a class-count vector."""
    total = sum(counts)
    if total == 0:
        return 0.0
    return 1.0 - sum((count / total) ** 2 for count in counts)


class SplitCriterion:
    """Interface: higher scores are better; <= 0 means "do not split"."""

    name = "abstract"

    def score(self, parent_counts: Sequence[int],
              children_counts: Sequence[Sequence[int]]) -> float:
        """Score a partition given parent and per-child class counts."""
        raise NotImplementedError


class InformationGain(SplitCriterion):
    """ID3's information gain: H(parent) - Σ w_i · H(child_i)."""

    name = "entropy"

    def score(self, parent_counts: Sequence[int],
              children_counts: Sequence[Sequence[int]]) -> float:
        total = sum(parent_counts)
        if total == 0:
            return 0.0
        remainder = 0.0
        for counts in children_counts:
            weight = sum(counts) / total
            remainder += weight * entropy(counts)
        return entropy(parent_counts) - remainder


class GainRatio(SplitCriterion):
    """C4.5's gain ratio: information gain / split information."""

    name = "gain_ratio"

    def __init__(self) -> None:
        self._gain = InformationGain()

    def score(self, parent_counts: Sequence[int],
              children_counts: Sequence[Sequence[int]]) -> float:
        gain = self._gain.score(parent_counts, children_counts)
        if gain <= 0.0:
            return 0.0
        sizes = [sum(counts) for counts in children_counts]
        split_info = entropy(sizes)
        if split_info <= 0.0:
            return 0.0
        return gain / split_info


class GiniGain(SplitCriterion):
    """CART's impurity decrease: G(parent) - Σ w_i · G(child_i)."""

    name = "gini"

    def score(self, parent_counts: Sequence[int],
              children_counts: Sequence[Sequence[int]]) -> float:
        total = sum(parent_counts)
        if total == 0:
            return 0.0
        remainder = 0.0
        for counts in children_counts:
            weight = sum(counts) / total
            remainder += weight * gini(counts)
        return gini(parent_counts) - remainder


class ChiSquare(SplitCriterion):
    """CHAID-style chi-square association, normalised to [0, 1].

    The score is Cramér's V squared: χ² / (N · (min(r, c) − 1)) over
    the children × classes contingency table, so it is comparable to
    the other criteria under the same ``min_gain`` semantics — 0 means
    the partition is independent of the class, 1 a perfect association.
    """

    name = "chi2"

    def score(self, parent_counts: Sequence[int],
              children_counts: Sequence[Sequence[int]]) -> float:
        total = sum(parent_counts)
        if total == 0:
            return 0.0
        class_totals = [0] * len(parent_counts)
        for counts in children_counts:
            for label, count in enumerate(counts):
                class_totals[label] += count
        child_totals = [sum(counts) for counts in children_counts]

        statistic = 0.0
        for counts, child_total in zip(children_counts, child_totals):
            if child_total == 0:
                continue
            for label, observed in enumerate(counts):
                expected = child_total * class_totals[label] / total
                if expected > 0:
                    deviation = observed - expected
                    statistic += deviation * deviation / expected

        live_rows = sum(1 for t in child_totals if t)
        live_cols = sum(1 for t in class_totals if t)
        dof_scale = min(live_rows, live_cols) - 1
        if dof_scale <= 0:
            return 0.0
        return statistic / (total * dof_scale)


_CRITERIA: dict[str, type[SplitCriterion]] = {
    cls.name: cls
    for cls in (InformationGain, GainRatio, GiniGain, ChiSquare)
}


def make_criterion(name: Union[str, SplitCriterion]) -> SplitCriterion:
    """Instantiate a criterion by name ('entropy', 'gain_ratio', 'gini')."""
    if isinstance(name, SplitCriterion):
        return name
    try:
        return _CRITERIA[name]()
    except KeyError:
        raise ClientError(
            f"unknown criterion {name!r}; choose from {sorted(_CRITERIA)}"
        ) from None
