"""Shared tree-growth logic: Algorithm Grow driven by CC tables.

Both the middleware-driven classifier and the in-memory reference
grower call :func:`partition_node` with a node and its CC table, so a
tree grown either way is *identical* given identical data — the
property the paper relies on ("this approach does not affect the
decision tree that is finally produced").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

from ..common.errors import ClientError
from .criteria import SplitCriterion, make_criterion
from .splits import best_split, child_attributes
from .tree import DecisionTree, NodeState, TreeNode

if TYPE_CHECKING:
    from ..core.cc_table import CCTable


@dataclass
class GrowthPolicy:
    """Stopping rules and split preferences of one growth run."""

    #: A criterion instance, or its registry name (normalised by
    #: ``__post_init__``).
    criterion: Union[str, SplitCriterion] = field(
        default_factory=lambda: make_criterion("entropy")
    )
    #: Grow binary value-vs-rest splits (the paper's experiments) or
    #: complete multiway splits.
    binary_splits: bool = True
    #: Stop at this depth (None = unbounded; the paper grows full trees).
    max_depth: int | None = None
    #: Nodes with fewer records become leaves.
    min_rows: int = 2
    #: Required score improvement for a split to be accepted.
    min_gain: float = 0.0

    def __post_init__(self) -> None:
        self.criterion = make_criterion(self.criterion)
        if self.min_rows < 1:
            raise ClientError("min_rows must be at least 1")
        if self.max_depth is not None and self.max_depth < 0:
            raise ClientError("max_depth must be non-negative")


def is_terminal_before_counting(node: TreeNode,
                                policy: GrowthPolicy) -> bool:
    """Stopping rules decidable from inherited statistics alone.

    Children get exact sizes and class distributions from the parent's
    CC table, so purity / size / depth checks need no counting — such
    nodes become leaves without ever being requested (Algorithm Grow's
    step 4 before the recursive call).
    """
    if node.is_pure:
        return True
    if node.n_rows is not None and node.n_rows < policy.min_rows:
        return True
    if policy.max_depth is not None and node.depth >= policy.max_depth:
        return True
    if not node.attributes:
        return True
    return False


def partition_node(tree: DecisionTree, node: TreeNode, cc: "CCTable",
                   policy: GrowthPolicy) -> list[TreeNode]:
    """Partition one counted node; returns children needing counts.

    ``cc`` is the node's CC table.  The node either becomes a leaf (no
    acceptable split) or is partitioned; children that are terminal by
    inherited statistics are marked leaves immediately, the rest are
    returned for counting.
    """
    if node.class_counts is None:
        # The root learns its class distribution from its own CC table.
        node.class_counts = cc.class_totals()
        node.n_rows = cc.records
    if cc.records != node.n_rows:
        raise ClientError(
            f"CC table for node {node.node_id} counted {cc.records} rows, "
            f"expected {node.n_rows}"
        )

    if is_terminal_before_counting(node, policy):
        node.mark_leaf()
        return []

    split = best_split(
        cc,
        make_criterion(policy.criterion),
        binary=policy.binary_splits,
        min_gain=policy.min_gain,
    )
    if split is None:
        node.mark_leaf()
        return []

    node.split_attribute = split.attribute
    node.split_kind = split.kind
    node.state = NodeState.PARTITIONED

    to_count: list[TreeNode] = []
    for child_spec in split.children:
        attributes = child_attributes(
            node.attributes, cc, split, child_spec
        )
        child = tree.add_child(
            node,
            child_spec.condition,
            child_spec.n_rows,
            child_spec.class_counts,
            attributes,
        )
        if is_terminal_before_counting(child, policy):
            child.mark_leaf()
        else:
            to_count.append(child)
    return to_count
