"""Model persistence: trees and Naive Bayes models to/from JSON.

A reproduction meant for downstream use needs its models to outlive
the process.  The format is plain JSON — stable, diffable, and
engine-independent — with a version field for forward compatibility.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from ..common.errors import ClientError
from ..core.filters import PathCondition
from ..datagen.dataset import DatasetSpec
from .naive_bayes import NaiveBayesClassifier
from .tree import DecisionTree, NodeState, TreeNode

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# decision trees
# ---------------------------------------------------------------------------


def tree_to_dict(tree: DecisionTree) -> dict[str, Any]:
    """Serialise a :class:`DecisionTree` to JSON-ready primitives."""
    spec = tree.spec

    def node_to_dict(node: TreeNode) -> dict[str, Any]:
        out: dict[str, Any] = {
            "state": node.state.value,
            "n_rows": node.n_rows,
            "class_counts": node.class_counts,
            "attributes": list(node.attributes),
        }
        if node.condition is not None:
            out["condition"] = {
                "attribute": node.condition.attribute,
                "op": node.condition.op,
                "value": node.condition.value,
            }
        if node.split_attribute is not None:
            out["split_attribute"] = node.split_attribute
            out["split_kind"] = node.split_kind
        if node.children:
            out["children"] = [node_to_dict(child) for child in node.children]
        return out

    return {
        "format": "repro.decision_tree",
        "version": FORMAT_VERSION,
        "spec": {
            "attribute_names": spec.attribute_names,
            "attribute_cards": spec.attribute_cards,
            "n_classes": spec.n_classes,
            "class_name": spec.class_name,
        },
        "root": node_to_dict(tree.root),
    }


def tree_from_dict(payload: Mapping[str, Any]) -> DecisionTree:
    """Rebuild a :class:`DecisionTree` from :func:`tree_to_dict` output."""
    _check_format(payload, "repro.decision_tree")
    spec_payload = payload["spec"]
    spec = DatasetSpec(
        spec_payload["attribute_cards"],
        spec_payload["n_classes"],
        attribute_names=spec_payload["attribute_names"],
        class_name=spec_payload["class_name"],
    )
    tree = DecisionTree(spec)

    def fill(node: TreeNode, data: Mapping[str, Any]) -> None:
        node.state = NodeState(data["state"])
        node.n_rows = data["n_rows"]
        node.class_counts = data["class_counts"]
        node.attributes = tuple(data["attributes"])
        node.split_attribute = data.get("split_attribute")
        node.split_kind = data.get("split_kind")
        for child_data in data.get("children", ()):
            condition_data = child_data["condition"]
            condition = PathCondition(
                condition_data["attribute"],
                condition_data["op"],
                condition_data["value"],
            )
            child = tree.add_child(
                node,
                condition,
                child_data["n_rows"],
                child_data["class_counts"],
                tuple(child_data["attributes"]),
            )
            fill(child, child_data)

    fill(tree.root, payload["root"])
    return tree


def save_tree(tree: DecisionTree, path: str) -> None:
    """Write a tree to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(tree_to_dict(tree), handle, indent=1)


def load_tree(path: str) -> DecisionTree:
    """Read a tree written by :func:`save_tree`."""
    with open(path) as handle:
        return tree_from_dict(json.load(handle))


# ---------------------------------------------------------------------------
# Naive Bayes
# ---------------------------------------------------------------------------


def naive_bayes_to_dict(model: NaiveBayesClassifier) -> dict[str, Any]:
    """Serialise a fitted :class:`NaiveBayesClassifier`."""
    if model._log_priors is None:
        raise ClientError("cannot serialise an unfitted model")
    assert model._spec is not None and model._log_likelihoods is not None
    spec = model._spec
    likelihoods = [
        [attribute, value, label, logp]
        for (attribute, value, label), logp in sorted(
            model._log_likelihoods.items()
        )
    ]
    return {
        "format": "repro.naive_bayes",
        "version": FORMAT_VERSION,
        "alpha": model.alpha,
        "spec": {
            "attribute_names": spec.attribute_names,
            "attribute_cards": spec.attribute_cards,
            "n_classes": spec.n_classes,
            "class_name": spec.class_name,
        },
        "attributes": list(model._attributes),
        "log_priors": model._log_priors,
        "class_counts": model._class_counts,
        "log_likelihoods": likelihoods,
    }


def naive_bayes_from_dict(
    payload: Mapping[str, Any],
) -> NaiveBayesClassifier:
    """Rebuild a :class:`NaiveBayesClassifier` from serialised form."""
    _check_format(payload, "repro.naive_bayes")
    spec_payload = payload["spec"]
    spec = DatasetSpec(
        spec_payload["attribute_cards"],
        spec_payload["n_classes"],
        attribute_names=spec_payload["attribute_names"],
        class_name=spec_payload["class_name"],
    )
    model = NaiveBayesClassifier(alpha=payload["alpha"])
    model._spec = spec
    model._attributes = tuple(payload["attributes"])
    model._log_priors = list(payload["log_priors"])
    model._class_counts = list(payload["class_counts"])
    model._log_likelihoods = {
        (attribute, value, label): logp
        for attribute, value, label, logp in payload["log_likelihoods"]
    }
    return model


def save_naive_bayes(model: NaiveBayesClassifier, path: str) -> None:
    """Write a Naive Bayes model to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(naive_bayes_to_dict(model), handle, indent=1)


def load_naive_bayes(path: str) -> NaiveBayesClassifier:
    """Read a model written by :func:`save_naive_bayes`."""
    with open(path) as handle:
        return naive_bayes_from_dict(json.load(handle))


def _check_format(payload: Mapping[str, Any], expected: str) -> None:
    if payload.get("format") != expected:
        raise ClientError(
            f"expected format {expected!r}, found {payload.get('format')!r}"
        )
    if payload.get("version") != FORMAT_VERSION:
        raise ClientError(
            f"unsupported format version {payload.get('version')!r}"
        )
