"""Diff a sanitizer run's observed lock-order edges against the witness.

``lock_order.witness.json`` is the blessed set of nested lock
acquisitions — the static ``lock-order`` rule merges it with the edges
it can prove from the AST and fails on cycles.  The file only stays
honest if runtime observations feed back into it, so CI runs::

    python -m repro.analysis.witness_check sanitize-report.json

after the sanitized test suites: every edge the instrumented locks
*actually* observed (the report's ``lock_order_edges``) must already be
blessed.  An undocumented nested acquisition fails the job — either
the code grew a lock nesting nobody reviewed, or the witness file went
stale.  ``--update`` rewrites the file with the union (run locally,
commit the diff); blessed edges that were not observed are reported
informationally but never fail, because no single test run exercises
every code path.

Exit codes follow ``python -m repro.analysis``: 0 clean, 1 findings,
2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .runtime.witness import (
    find_witness_file,
    load_witness_edges,
    save_witness_edges,
)


def observed_edges_from_report(path: str) -> list[tuple[str, str]]:
    """The ``lock_order_edges`` recorded in a sanitizer run report."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    edges = payload.get("lock_order_edges", [])
    return [(str(outer), str(inner)) for outer, inner in edges]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.witness_check",
        description=(
            "Fail when a sanitizer run observed nested lock "
            "acquisitions missing from lock_order.witness.json."
        ),
    )
    parser.add_argument(
        "report",
        help="sanitizer run report (REPRO_SANITIZE_REPORT output)",
    )
    parser.add_argument(
        "--witness", default=None,
        help=(
            "witness file to check against (default: "
            "lock_order.witness.json found walking up from the cwd)"
        ),
    )
    parser.add_argument(
        "--update", action="store_true",
        help="bless the observed edges: rewrite the witness file with "
             "the union and exit 0",
    )
    return parser


def main(argv: "Optional[list[str]]" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    witness_path = args.witness or find_witness_file()
    if witness_path is None:
        print("error: no lock_order.witness.json found", file=sys.stderr)
        return 2
    try:
        blessed = set(load_witness_edges(witness_path))
        observed = set(observed_edges_from_report(args.report))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    undocumented = sorted(observed - blessed)
    unexercised = sorted(blessed - observed)

    if args.update:
        save_witness_edges(witness_path, blessed | observed)
        print(
            f"witness updated: {len(undocumented)} edge(s) blessed, "
            f"{len(blessed | observed)} total"
        )
        return 0

    for outer, inner in unexercised:
        # Informational only: one run never exercises every path.
        print(f"note: blessed edge not observed this run: "
              f"{outer} -> {inner}")
    if undocumented:
        for outer, inner in undocumented:
            print(
                f"undocumented lock-order edge: {outer} -> {inner} "
                f"(observed by the sanitizer, missing from "
                f"{witness_path})"
            )
        print(
            f"{len(undocumented)} undocumented edge(s); re-run with "
            "--update locally and commit the witness diff if this "
            "nesting is intended"
        )
        return 1
    print(
        f"witness check clean: {len(observed)} observed edge(s), "
        f"all blessed"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
