"""Diff a sanitizer run's observed lock-order edges against the witness.

``lock_order.witness.json`` is the blessed set of nested lock
acquisitions — the static ``lock-order`` rule merges it with the edges
it can prove from the AST and fails on cycles.  The file only stays
honest if runtime observations feed back into it, so CI runs::

    python -m repro.analysis.witness_check sanitize-report.json

after the sanitized test suites: every edge the instrumented locks
*actually* observed (the report's ``lock_order_edges``) must already be
blessed.  An undocumented nested acquisition fails the job — either
the code grew a lock nesting nobody reviewed, or the witness file went
stale.  ``--update`` rewrites the file with the union (run locally,
commit the diff), merging the holding-thread names from the report's
``lock_order_edge_records`` into each blessed record; blessed edges
that were not observed are reported informationally but never fail,
because no single test run exercises every code path.

``--static-diff`` closes the loop in the other direction: it builds
the interprocedural lock-set analysis over the sources (``--src``,
default ``src``) and demands that every blessed edge be *derivable*
statically.  A blessed edge with no static acquisition path is either
stale or genuinely dynamic; the former should be deleted, the latter
documented with a ``justification`` field on its witness record.
Unjustified underivable edges are findings and fail the check.

Exit codes follow ``python -m repro.analysis``: 0 clean, 1 findings,
2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .runtime.witness import (
    WitnessEdge,
    find_witness_file,
    load_witness,
    merge_witness_edges,
    save_witness,
)


def observed_edges_from_report(path: str) -> list[tuple[str, str]]:
    """The ``lock_order_edges`` recorded in a sanitizer run report."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    edges = payload.get("lock_order_edges", [])
    return [(str(outer), str(inner)) for outer, inner in edges]


def observed_records_from_report(path: str) -> list[WitnessEdge]:
    """Observed edges as witness records, thread names included.

    Prefers the report's ``lock_order_edge_records`` (present since
    witness format v2); falls back to the bare ``lock_order_edges``
    pairs from older reports, which carry no thread information.
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    records = payload.get("lock_order_edge_records")
    if records is not None:
        return [
            WitnessEdge(
                outer=str(record["outer"]),
                inner=str(record["inner"]),
                threads=tuple(
                    str(name) for name in record.get("threads", [])
                ),
            )
            for record in records
        ]
    return [
        WitnessEdge(outer=outer, inner=inner)
        for outer, inner in observed_edges_from_report(path)
    ]


def static_edge_pairs(src_paths: list[str]) -> set[tuple[str, str]]:
    """Every lock-order edge the lock-set analysis derives from source."""
    from .engine import load_project

    project, _ = load_project(src_paths)
    return set(project.lockset().edge_pairs())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.witness_check",
        description=(
            "Fail when a sanitizer run observed nested lock "
            "acquisitions missing from lock_order.witness.json."
        ),
    )
    parser.add_argument(
        "report",
        help="sanitizer run report (REPRO_SANITIZE_REPORT output)",
    )
    parser.add_argument(
        "--witness", default=None,
        help=(
            "witness file to check against (default: "
            "lock_order.witness.json found walking up from the cwd)"
        ),
    )
    parser.add_argument(
        "--update", action="store_true",
        help="bless the observed edges: rewrite the witness file with "
             "the union (merging observed thread names) and exit 0",
    )
    parser.add_argument(
        "--static-diff", action="store_true",
        help=(
            "also require every blessed edge to be derivable by the "
            "static lock-set analysis; underivable edges without a "
            "'justification' on their witness record are findings"
        ),
    )
    parser.add_argument(
        "--src", nargs="*", default=["src"], metavar="PATH",
        help="sources the static lock-set analysis scans for "
             "--static-diff (default: src)",
    )
    return parser


def main(argv: "Optional[list[str]]" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    witness_path = args.witness or find_witness_file()
    if witness_path is None:
        print("error: no lock_order.witness.json found", file=sys.stderr)
        return 2
    try:
        blessed_records = load_witness(witness_path)
        observed_records = observed_records_from_report(args.report)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    blessed = {edge.pair for edge in blessed_records}
    observed = {edge.pair for edge in observed_records}

    undocumented = sorted(observed - blessed)
    unexercised = sorted(blessed - observed)

    if args.update:
        merged = merge_witness_edges(blessed_records, observed_records)
        save_witness(witness_path, merged)
        print(
            f"witness updated: {len(undocumented)} edge(s) blessed, "
            f"{len(merged)} total"
        )
        return 0

    failed = False
    for outer, inner in unexercised:
        # Informational only: one run never exercises every path.
        print(f"note: blessed edge not observed this run: "
              f"{outer} -> {inner}")
    if undocumented:
        for outer, inner in undocumented:
            print(
                f"undocumented lock-order edge: {outer} -> {inner} "
                f"(observed by the sanitizer, missing from "
                f"{witness_path})"
            )
        print(
            f"{len(undocumented)} undocumented edge(s); re-run with "
            "--update locally and commit the witness diff if this "
            "nesting is intended"
        )
        failed = True

    if args.static_diff:
        static = static_edge_pairs(args.src)
        underivable = [
            edge for edge in blessed_records if edge.pair not in static
        ]
        unjustified = [
            edge for edge in underivable if edge.justification is None
        ]
        for edge in underivable:
            if edge.justification is not None:
                print(
                    f"note: blessed edge not statically derivable "
                    f"(justified): {edge.outer} -> {edge.inner} — "
                    f"{edge.justification}"
                )
        if unjustified:
            for edge in unjustified:
                print(
                    f"blessed edge has no static acquisition path: "
                    f"{edge.outer} -> {edge.inner} (the lock-set "
                    f"analysis over {', '.join(args.src)} cannot "
                    f"derive it; delete the stale edge or add a "
                    f"'justification' to its witness record)"
                )
            print(
                f"{len(unjustified)} statically underivable edge(s) "
                "without justification"
            )
            failed = True
        else:
            print(
                f"static diff clean: {len(blessed)} blessed edge(s), "
                f"{len(static)} statically derived"
            )

    if failed:
        return 1
    print(
        f"witness check clean: {len(observed)} observed edge(s), "
        f"all blessed"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
