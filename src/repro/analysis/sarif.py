"""SARIF 2.1.0 output for the analysis suite.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning ingests, so uploading
one file from the CI ``static-analysis`` job turns every finding into
an inline PR annotation.  Only the small stable core of the spec is
emitted:

* one ``run`` with a ``tool.driver`` carrying the full rule catalog
  (including the engine pseudo-rules, so suppression-audit findings
  resolve their ``ruleId``);
* one ``result`` per finding — suppressed findings are included too,
  marked with ``suppressions: [{"kind": "inSource"}]`` so code
  scanning shows them as closed instead of losing the audit trail;
* per-rule wall times under ``run.properties.ruleTimings`` (the same
  numbers ``--format json`` reports).

Columns are 1-based in SARIF; the engine's are 0-based AST offsets,
hence the ``+ 1``.
"""

from __future__ import annotations

import os
from typing import Sequence

from .engine import (
    UNJUSTIFIED_SUPPRESSION,
    UNUSED_SUPPRESSION,
    AnalysisReport,
    RuleLike,
)
from .findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Engine pseudo-rules that can appear as finding ``rule`` values
#: without a Rule class behind them.
_PSEUDO_RULES = (
    (UNJUSTIFIED_SUPPRESSION,
     "a repro-lint suppression pragma lacks a ' -- why' justification"),
    (UNUSED_SUPPRESSION,
     "a suppressed rule never matched a finding on that line"),
    ("parse-error", "the file could not be parsed"),
)


def _artifact_uri(path: str, root: str) -> str:
    """A root-relative, forward-slash URI for one finding path."""
    relative = os.path.relpath(os.path.abspath(path),
                               os.path.abspath(root))
    if relative.startswith(".."):
        relative = path
    return relative.replace(os.sep, "/")


def _result(finding: Finding, root: str,
            suppressed: bool) -> dict[str, object]:
    result: dict[str, object] = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _artifact_uri(finding.path, root),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column + 1,
                    },
                }
            }
        ],
    }
    if suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    return result


def to_sarif(report: AnalysisReport, rules: Sequence[RuleLike],
             root: str) -> dict[str, object]:
    """The SARIF 2.1.0 document for one analysis run."""
    descriptors: list[dict[str, object]] = [
        {
            "id": rule.name,
            "shortDescription": {"text": rule.description},
        }
        for rule in rules
    ]
    known = {rule.name for rule in rules}
    for name, description in _PSEUDO_RULES:
        if name not in known:
            descriptors.append({
                "id": name,
                "shortDescription": {"text": description},
            })

    results = [
        _result(finding, root, suppressed=False)
        for finding in report.findings
    ]
    results.extend(
        _result(finding, root, suppressed=True)
        for finding in report.suppressed
    )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri":
                            "docs/static_analysis.md",
                        "rules": descriptors,
                    }
                },
                "results": results,
                "properties": {
                    "filesScanned": report.files_scanned,
                    "parseErrors": report.parse_errors,
                    "rulesRun": report.rules_run,
                    "ruleTimings": {
                        name: round(seconds, 6)
                        for name, seconds in
                        sorted(report.rule_timings.items())
                    },
                },
            }
        ],
    }
