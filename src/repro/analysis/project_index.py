"""The project call-graph layer: modules, symbols, types, reachability.

Per-file AST rules can prove lexical properties ("this write sits inside
a ``with`` block") but the meter-integrity invariants are
*interprocedural*: whether an executor entry point charges for a row
access depends on what its callees — two modules away — do.  The
:class:`ProjectIndex` gives rules just enough whole-program structure
to ask those questions:

* **module and symbol resolution** — every scanned file becomes a
  dotted module (``src/repro/sqlengine/heap.py`` → ``repro.sqlengine
  .heap``); top-level functions, classes, methods and import aliases
  (including relative ``from . import`` forms) resolve to project
  qualnames;
* **annotation-driven type inference** — parameter annotations
  (``table: "HeapTable"``), attribute assignments in ``__init__``
  (``self._table = table``, ``self._pages = [Page(n)]``) and resolved
  constructor calls give receivers types, so ``self._table
  .scan_rows()`` resolves to ``repro.sqlengine.heap.HeapTable
  .scan_rows`` without importing anything;
* **a call graph with bounded reachability** — one node per module
  -level function or method (nested functions and lambdas fold into
  their enclosing node, which matches how closures like the columnar
  cache's ``charge_scan`` actually execute), edges only where
  resolution *succeeded*, plus BFS ``reachable``/``find_path``
  queries with a depth bound.

What it deliberately does **not** do: resolve calls through untyped
receivers unless the method name is distinctive (defined by at most
:data:`DYNAMIC_FALLBACK_MAX` project classes and not a common container
-method name), follow ``getattr``/dict dispatch, or guess across
``Any``.  Unresolved calls are counted per function
(:attr:`FunctionInfo.unresolved_calls`) so rules — and the docs — can
be honest about where reachability gives up.
"""

from __future__ import annotations

import ast
import os
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from .source import SourceFile

if TYPE_CHECKING:
    from .engine import Project

#: An untyped receiver's method call resolves through the name-based
#: fallback only when at most this many project classes define it.
DYNAMIC_FALLBACK_MAX = 3

#: Method names too generic for the dynamic-dispatch fallback: calling
#: ``.append`` on a plain list must not resolve to ``Page.append``.
COMMON_METHOD_NAMES = frozenset({
    "append", "add", "remove", "delete", "insert", "extend", "pop",
    "get", "update",
    "clear", "copy", "keys", "values", "items", "setdefault", "join",
    "split", "strip", "read", "write", "close", "open", "submit",
    "result", "cancel", "acquire", "release", "put", "sort", "index",
    "count", "encode", "decode", "format", "startswith", "endswith",
})

#: Default BFS depth bound for reachability queries.
DEFAULT_DEPTH = 24


@dataclass
class FunctionInfo:
    """One call-graph node: a module-level function or a method."""

    qualname: str
    module: str
    name: str
    class_name: Optional[str]
    node: ast.FunctionDef
    source: SourceFile
    #: Call sites whose resolution failed (terminal callee name each).
    unresolved_calls: List[str] = field(default_factory=list)


@dataclass
class CallSite:
    """One resolved call expression inside a function."""

    node: ast.Call
    #: Project qualnames this call may dispatch to.
    targets: Tuple[str, ...]
    #: True when resolution used the name-based dispatch fallback.
    via_fallback: bool = False


@dataclass
class ClassInfo:
    """One project class: methods, bases, inferred attribute types."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    source: SourceFile
    #: Base-class qualnames resolved inside the project.
    bases: List[str] = field(default_factory=list)
    #: method name -> qualname.
    methods: Dict[str, str] = field(default_factory=dict)
    #: attribute name -> inferred class qualname.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: attribute name -> element class qualname (list-of-X attributes).
    attr_elem_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One scanned file as a dotted module with a symbol table."""

    name: str
    source: SourceFile
    #: local name -> project qualname (defs, classes, import aliases).
    symbols: Dict[str, str] = field(default_factory=dict)


def module_name_for(path: str, root: str) -> str:
    """Dotted module name of ``path`` relative to the project root.

    A leading ``src/`` component is dropped (the repository layout), a
    trailing ``__init__`` names the package, and a file outside the
    root falls back to its bare stem — which is exactly what fixture
    directories want.
    """
    rel = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    rel = rel.replace(os.sep, "/")
    if rel.startswith("../"):
        return os.path.splitext(os.path.basename(path))[0]
    if rel.startswith("src/"):
        rel = rel[len("src/"):]
    parts = rel[:-3].split("/") if rel.endswith(".py") else rel.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """A dotted type name from an annotation, or None when too clever.

    Handles ``X``, ``mod.X``, string annotations (``"X"``),
    ``Optional[X]`` and PEP-604 ``X | None``; containers and anything
    subscripted other than Optional give up (their *element* types are
    inferred separately, from assigned values).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            inner = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
        return _annotation_name(inner)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        parts: List[str] = []
        probe: ast.AST = node
        while isinstance(probe, ast.Attribute):
            parts.append(probe.attr)
            probe = probe.value
        if isinstance(probe, ast.Name):
            parts.append(probe.id)
            return ".".join(reversed(parts))
        return None
    if isinstance(node, ast.Subscript):
        head = _annotation_name(node.value)
        if head in ("Optional", "typing.Optional"):
            return _annotation_name(node.slice)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            if isinstance(side, ast.Constant) and side.value is None:
                continue
            name = _annotation_name(side)
            if name is not None:
                return name
    return None


def _tuple_elem_annotations(
    node: Optional[ast.AST],
) -> Optional[List[ast.AST]]:
    """Element annotations of ``tuple[X, Y]`` / ``Tuple[X, Y]``.

    Returns None for anything that is not a fixed-arity tuple
    annotation (including ``tuple[X, ...]``); string annotations are
    re-parsed first, like :func:`_annotation_name` does.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            inner = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
        return _tuple_elem_annotations(inner)
    if not isinstance(node, ast.Subscript):
        return None
    head = _annotation_name(node.value)
    if head not in ("tuple", "Tuple", "typing.Tuple"):
        return None
    if not isinstance(node.slice, ast.Tuple):
        return None
    elems = list(node.slice.elts)
    if any(
        isinstance(e, ast.Constant) and e.value is Ellipsis
        for e in elems
    ):
        return None
    return elems


def _iter_own_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Every Call lexically inside ``node``, *including* nested defs.

    Nested functions and lambdas execute with their enclosing
    function's state (closures), so their calls are attributed to the
    enclosing call-graph node.
    """
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def _terminal_call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


class ProjectIndex:
    """Symbols, classes and the call graph of one scanned project."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: caller qualname -> resolved call sites.
        self.calls: Dict[str, List[CallSite]] = {}
        #: caller qualname -> set of callee qualnames (edge view).
        self.edges: Dict[str, Set[str]] = {}
        #: class qualname -> direct subclass qualnames.
        self.subclasses: Dict[str, List[str]] = {}
        #: method name -> qualnames of classes defining it.
        self._method_owners: Dict[str, List[str]] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, project: "Project") -> "ProjectIndex":
        index = cls()
        for source in project.files:
            index._collect_module(source, project.root)
        index._resolve_hierarchy()
        index._infer_attr_types()
        for info in list(index.functions.values()):
            index._resolve_calls(info)
        return index

    def _collect_module(self, source: SourceFile, root: str) -> None:
        module = ModuleInfo(module_name_for(source.path, root), source)
        # Duplicate stems (two fixture files named alike) keep the
        # first registration; later files still get functions indexed
        # under their own qualnames.
        self.modules.setdefault(module.name, module)
        for stmt in source.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(stmt, ast.FunctionDef):
                    self._register_function(module, None, stmt, source)
            elif isinstance(stmt, ast.ClassDef):
                self._register_class(module, stmt, source)
        # Imports are collected from the whole tree: several modules
        # import lazily inside functions to break cycles.
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    module.symbols.setdefault(local, target)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(module.name, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.symbols.setdefault(
                        local, f"{base}.{alias.name}" if base else alias.name
                    )

    @staticmethod
    def _import_base(module_name: str,
                     node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module or ""
        parts = module_name.split(".")
        if node.level > len(parts):
            return None
        base_parts = parts[: len(parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts)

    def _register_function(self, module: ModuleInfo,
                           owner: Optional[ClassInfo],
                           node: ast.FunctionDef,
                           source: SourceFile) -> None:
        if owner is None:
            qualname = f"{module.name}.{node.name}" if module.name \
                else node.name
            module.symbols.setdefault(node.name, qualname)
            class_name = None
        else:
            qualname = f"{owner.qualname}.{node.name}"
            owner.methods[node.name] = qualname
            class_name = owner.name
        info = FunctionInfo(
            qualname=qualname, module=module.name, name=node.name,
            class_name=class_name, node=node, source=source,
        )
        self.functions.setdefault(qualname, info)

    def _register_class(self, module: ModuleInfo, node: ast.ClassDef,
                        source: SourceFile) -> None:
        qualname = f"{module.name}.{node.name}" if module.name \
            else node.name
        module.symbols.setdefault(node.name, qualname)
        info = ClassInfo(
            qualname=qualname, module=module.name, name=node.name,
            node=node, source=source,
        )
        self.classes.setdefault(qualname, info)
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef):
                self._register_function(module, info, stmt, source)
                self._method_owners.setdefault(
                    stmt.name, []
                ).append(qualname)

    def _resolve_hierarchy(self) -> None:
        for info in self.classes.values():
            module = self.modules.get(info.module)
            for base in info.node.bases:
                name = _annotation_name(base)
                if name is None:
                    continue
                resolved = self._resolve_symbol(module, name)
                if resolved in self.classes:
                    info.bases.append(resolved)
                    self.subclasses.setdefault(resolved, []).append(
                        info.qualname
                    )

    # -- symbol / type resolution --------------------------------------------

    def _resolve_symbol(self, module: Optional[ModuleInfo],
                        dotted: str) -> str:
        """Map a dotted local name to a project qualname (best effort)."""
        if module is None:
            return dotted
        head, _, rest = dotted.partition(".")
        target = module.symbols.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def _class_for_annotation(self, module: Optional[ModuleInfo],
                              annotation: Optional[ast.AST]) -> Optional[str]:
        name = _annotation_name(annotation)
        if name is None:
            return None
        resolved = self._resolve_symbol(module, name)
        if resolved in self.classes:
            return resolved
        # Unresolvable but suffix-unique inside the project: accept.
        matches = [q for q in self.classes
                   if q.endswith("." + name.split(".")[-1])]
        return matches[0] if len(matches) == 1 else None

    def _param_types(self, info: FunctionInfo) -> Dict[str, str]:
        module = self.modules.get(info.module)
        env: Dict[str, str] = {}
        args = info.node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            resolved = self._class_for_annotation(module, arg.annotation)
            if resolved is not None:
                env[arg.arg] = resolved
        if info.class_name is not None and (args.args or args.posonlyargs):
            first = (args.posonlyargs or args.args)[0].arg
            # Only a literal ``self`` binds to the owner class —
            # staticmethods' first parameter is an ordinary argument.
            if first == "self":
                owner = self._owner_class(info)
                if owner is not None:
                    env[first] = owner.qualname
        return env

    def _owner_class(self, info: FunctionInfo) -> Optional[ClassInfo]:
        if info.class_name is None:
            return None
        prefix = info.qualname.rsplit(".", 1)[0]
        return self.classes.get(prefix)

    def _infer_attr_types(self) -> None:
        """Fill each class's attribute-type tables from its methods."""
        for cls_info in self.classes.values():
            module = self.modules.get(cls_info.module)
            for stmt in cls_info.node.body:
                if isinstance(stmt, ast.AnnAssign) and \
                        isinstance(stmt.target, ast.Name):
                    resolved = self._class_for_annotation(
                        module, stmt.annotation
                    )
                    if resolved is not None:
                        cls_info.attr_types.setdefault(
                            stmt.target.id, resolved
                        )
            for method_qualname in cls_info.methods.values():
                method = self.functions.get(method_qualname)
                if method is None:
                    continue
                env = self._param_types(method)
                for node in ast.walk(method.node):
                    targets: List[ast.expr] = []
                    value: Optional[ast.expr] = None
                    if isinstance(node, ast.Assign):
                        targets, value = list(node.targets), node.value
                    elif isinstance(node, ast.AnnAssign) and \
                            node.target is not None:
                        targets = [node.target]
                        value = node.value
                        annotated = self._class_for_annotation(
                            module, node.annotation
                        )
                        if annotated is not None and isinstance(
                            node.target, ast.Attribute
                        ) and isinstance(node.target.value, ast.Name) \
                                and node.target.value.id == "self":
                            cls_info.attr_types.setdefault(
                                node.target.attr, annotated
                            )
                    for target in targets:
                        if not (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            continue
                        inferred = self._value_type(
                            value, env, cls_info, module
                        )
                        if inferred is not None:
                            cls_info.attr_types.setdefault(
                                target.attr, inferred
                            )
                        elem = self._value_elem_type(
                            value, env, cls_info, module
                        )
                        if elem is not None:
                            cls_info.attr_elem_types.setdefault(
                                target.attr, elem
                            )

    def _value_type(self, node: Optional[ast.AST], env: Dict[str, str],
                    cls_info: Optional[ClassInfo],
                    module: Optional[ModuleInfo],
                    depth: int = 0) -> Optional[str]:
        """Best-effort type of an expression, as a class qualname."""
        if node is None or depth > 4:
            return None
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and \
                    node.value.id == "self" and cls_info is not None:
                return self._attr_type(cls_info, node.attr)
            base = self._value_type(node.value, env, cls_info, module,
                                    depth + 1)
            if base is not None:
                owner = self.classes.get(base)
                if owner is not None:
                    return self._attr_type(owner, node.attr)
            return None
        if isinstance(node, ast.Subscript):
            if isinstance(node.value, ast.Attribute) and \
                    isinstance(node.value.value, ast.Name) and \
                    node.value.value.id == "self" and cls_info is not None:
                return self._attr_elem_type(cls_info, node.value.attr)
            return None
        if isinstance(node, ast.Call):
            callees = self._call_targets(node, env, cls_info, module)
            for callee in callees:
                if callee in self.classes:
                    return callee
                # Constructors resolve to ``Cls.__init__``; the value
                # they produce is the class itself.
                if callee.endswith(".__init__"):
                    owner_name = callee[: -len(".__init__")]
                    if owner_name in self.classes:
                        return owner_name
                method = self.functions.get(callee)
                if method is not None:
                    owner_module = self.modules.get(method.module)
                    resolved = self._class_for_annotation(
                        owner_module, method.node.returns
                    )
                    if resolved is not None:
                        return resolved
            return None
        return None

    def _iter_elem_type(self, node: ast.AST,
                        cls_info: Optional[ClassInfo]) -> Optional[str]:
        """Element type of an iterated expression (``self._pages``)."""
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "self" and cls_info is not None:
            return self._attr_elem_type(cls_info, node.attr)
        return None

    def _value_elem_type(self, node: Optional[ast.AST],
                         env: Dict[str, str],
                         cls_info: Optional[ClassInfo],
                         module: Optional[ModuleInfo]) -> Optional[str]:
        """Element type of a list literal like ``[Page(n)]``."""
        if isinstance(node, (ast.List, ast.Tuple)) and len(node.elts) >= 1:
            return self._value_type(node.elts[0], env, cls_info, module,
                                    depth=1)
        return None

    def _attr_type(self, cls_info: ClassInfo,
                   attr: str) -> Optional[str]:
        for owner in self._mro(cls_info.qualname):
            found = self.classes[owner].attr_types.get(attr)
            if found is not None:
                return found
        return None

    def _attr_elem_type(self, cls_info: ClassInfo,
                        attr: str) -> Optional[str]:
        for owner in self._mro(cls_info.qualname):
            found = self.classes[owner].attr_elem_types.get(attr)
            if found is not None:
                return found
        return None

    def _mro(self, class_qualname: str) -> List[str]:
        """Linearised project-only ancestry (self first, cycle-safe)."""
        out: List[str] = []
        queue = deque([class_qualname])
        seen: Set[str] = set()
        while queue:
            current = queue.popleft()
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            out.append(current)
            queue.extend(self.classes[current].bases)
        return out

    def lookup_method(self, class_qualname: str,
                      method: str) -> Optional[str]:
        """Resolve ``method`` along the project-only MRO."""
        for owner in self._mro(class_qualname):
            found = self.classes[owner].methods.get(method)
            if found is not None:
                return found
        return None

    def _override_targets(self, class_qualname: str,
                          method: str) -> List[str]:
        """Subclass overrides of ``method`` (dynamic dispatch)."""
        out: List[str] = []
        queue = deque(self.subclasses.get(class_qualname, []))
        seen: Set[str] = set()
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            sub = self.classes.get(current)
            if sub is None:
                continue
            own = sub.methods.get(method)
            if own is not None:
                out.append(own)
            queue.extend(self.subclasses.get(current, []))
        return out

    # -- call resolution -----------------------------------------------------

    def _call_targets(self, node: ast.Call, env: Dict[str, str],
                      cls_info: Optional[ClassInfo],
                      module: Optional[ModuleInfo]) -> Tuple[str, ...]:
        """Project qualnames one call expression may dispatch to."""
        func = node.func
        if isinstance(func, ast.Name):
            return self._name_targets(func.id, module)
        if isinstance(func, ast.Attribute):
            # Module alias: ``heap.HeapTable(...)`` / ``mod.func(...)``.
            dotted = _annotation_name(func)
            if dotted is not None and module is not None:
                resolved = self._resolve_symbol(module, dotted)
                direct = self._qualname_targets(resolved)
                if direct:
                    return direct
            receiver = self._value_type(func.value, env, cls_info,
                                        module, depth=1)
            if receiver is not None:
                hit = self.lookup_method(receiver, func.attr)
                if hit is None:
                    return ()
                return tuple(
                    [hit] + self._override_targets(receiver, func.attr)
                )
            return self._fallback_targets(func.attr)
        return ()

    def _name_targets(self, name: str,
                      module: Optional[ModuleInfo]) -> Tuple[str, ...]:
        resolved = self._resolve_symbol(module, name)
        return self._qualname_targets(resolved)

    def _qualname_targets(self, qualname: str) -> Tuple[str, ...]:
        if qualname in self.classes:
            ctor = self.lookup_method(qualname, "__init__")
            return (ctor,) if ctor is not None else (qualname,)
        if qualname in self.functions:
            return (qualname,)
        return ()

    def _fallback_targets(self, method: str) -> Tuple[str, ...]:
        """Name-based dispatch for untyped receivers — kept narrow."""
        if method in COMMON_METHOD_NAMES:
            return ()
        owners = self._method_owners.get(method, [])
        if not owners or len(owners) > DYNAMIC_FALLBACK_MAX:
            return ()
        out: List[str] = []
        for owner in owners:
            hit = self.classes[owner].methods.get(method)
            if hit is not None:
                out.append(hit)
        return tuple(out)

    def _resolve_calls(self, info: FunctionInfo) -> None:
        env = dict(self._param_types(info))
        cls_info = self._owner_class(info)
        module = self.modules.get(info.module)
        # One linear pre-pass over simple local assignments gives
        # ``table = database.table(name)``-style locals their types;
        # ``for page in self._pages:`` loop targets pick up the
        # iterated attribute's element type the same way.
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                inferred = self._value_type(node.value, env, cls_info,
                                            module)
                if inferred is not None:
                    env.setdefault(node.targets[0].id, inferred)
            elif isinstance(node, ast.Assign) and \
                    len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Tuple) and \
                    isinstance(node.value, ast.Call):
                # ``pool, owned = self._acquire_pool()`` — thread a
                # ``tuple[X, Y]`` return annotation positionally.
                self._unpack_types(node.targets[0], node.value, env,
                                   cls_info, module)
            elif isinstance(node, ast.For) and \
                    isinstance(node.target, ast.Name):
                elem = self._iter_elem_type(node.iter, cls_info)
                if elem is not None:
                    env.setdefault(node.target.id, elem)
        sites: List[CallSite] = []
        for call in _iter_own_calls(info.node):
            targets = self._call_targets(call, env, cls_info, module)
            if targets:
                fallback = not isinstance(call.func, ast.Name) and \
                    self._was_fallback(call, env, cls_info, module)
                sites.append(CallSite(call, targets, fallback))
            else:
                name = _terminal_call_name(call)
                if name is not None:
                    info.unresolved_calls.append(name)
        self.calls[info.qualname] = sites
        self.edges[info.qualname] = {
            target for site in sites for target in site.targets
        }

    def _unpack_types(self, target: ast.Tuple, call: ast.Call,
                      env: Dict[str, str],
                      cls_info: Optional[ClassInfo],
                      module: Optional[ModuleInfo]) -> None:
        """Positional types for ``a, b = f()`` from f's ``tuple[...]``
        return annotation."""
        if not all(isinstance(e, ast.Name) for e in target.elts):
            return
        for callee in self._call_targets(call, env, cls_info, module):
            fn = self.functions.get(callee)
            if fn is None:
                continue
            elems = _tuple_elem_annotations(fn.node.returns)
            if elems is None or len(elems) != len(target.elts):
                continue
            fn_module = self.modules.get(fn.module)
            for name_node, annotation in zip(target.elts, elems):
                resolved = self._class_for_annotation(
                    fn_module, annotation
                )
                if resolved is not None and \
                        isinstance(name_node, ast.Name):
                    env.setdefault(name_node.id, resolved)
            return

    def _was_fallback(self, call: ast.Call, env: Dict[str, str],
                      cls_info: Optional[ClassInfo],
                      module: Optional[ModuleInfo]) -> bool:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return False
        dotted = _annotation_name(func)
        if dotted is not None and module is not None:
            if self._qualname_targets(self._resolve_symbol(module, dotted)):
                return False
        return self._value_type(
            func.value, env, cls_info, module, depth=1
        ) is None

    # -- queries -------------------------------------------------------------

    def reachable(self, start: str,
                  depth: int = DEFAULT_DEPTH) -> Dict[str, int]:
        """Qualname -> hop count for everything reachable from ``start``.

        ``start`` itself is included at depth 0.  The bound keeps
        pathological graphs (cycles included) cheap and makes "gave up"
        explicit rather than silent.
        """
        out: Dict[str, int] = {start: 0}
        queue = deque([(start, 0)])
        while queue:
            current, hops = queue.popleft()
            if hops >= depth:
                continue
            for callee in self.edges.get(current, ()):
                if callee not in out:
                    out[callee] = hops + 1
                    queue.append((callee, hops + 1))
        return out

    def find_path(self, start: str, targets: Set[str],
                  depth: int = DEFAULT_DEPTH,
                  blocked: Optional[Set[str]] = None) -> Optional[List[str]]:
        """Shortest call path from ``start`` into ``targets``.

        ``blocked`` nodes terminate exploration (they may be *reached*
        as a final hop only if in ``targets``); the meter rules use
        this to ask for a path that avoids every charging function.
        """
        if start in targets:
            return [start]
        parents: Dict[str, str] = {}
        queue = deque([(start, 0)])
        seen = {start}
        while queue:
            current, hops = queue.popleft()
            if hops >= depth:
                continue
            for callee in self.edges.get(current, ()):
                if callee in seen:
                    continue
                seen.add(callee)
                parents[callee] = current
                if callee in targets:
                    path = [callee]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                if blocked is not None and callee in blocked:
                    continue
                queue.append((callee, hops + 1))
        return None

    def call_sites_into(self, caller: str,
                        next_hop: str) -> List[CallSite]:
        """Call sites in ``caller`` that may dispatch to ``next_hop``."""
        return [
            site for site in self.calls.get(caller, [])
            if next_hop in site.targets
        ]
