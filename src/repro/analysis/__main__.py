"""CLI driver: ``python -m repro.analysis [paths...]``.

Exit codes: 0 = clean, 1 = findings reported, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

from .engine import analyze
from .rules import default_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Run the repro static-analysis suite (concurrency lint + "
            "config consistency) over the given files or directories."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also print findings silenced by pragmas",
    )
    parser.add_argument(
        "--root", default=None,
        help=(
            "project root for cross-file rules (docs/, README.md); "
            "auto-detected from the nearest pyproject.toml by default"
        ),
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.name}: {rule.description}")
        return 0

    try:
        report = analyze(args.paths, rules, root=args.root)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        payload = {
            "files_scanned": report.files_scanned,
            "parse_errors": report.parse_errors,
            "findings": [f.to_dict() for f in report.findings],
            "suppressed": [f.to_dict() for f in report.suppressed],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        if args.show_suppressed:
            for finding in report.suppressed:
                print(f"[suppressed] {finding.render()}")
        summary = (
            f"{len(report.findings)} finding(s), "
            f"{len(report.suppressed)} suppressed, "
            f"{report.files_scanned} file(s) scanned"
        )
        print(summary)

    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
