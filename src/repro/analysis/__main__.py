"""CLI driver: ``python -m repro.analysis [paths...]``.

Exit codes: 0 = clean, 1 = findings reported (or the time budget was
exceeded), 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

from .engine import analyze
from .rules import default_rules, rules_by_name
from .sarif import to_sarif


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Run the repro static-analysis suite (concurrency lint, "
            "config consistency, meter integrity) over the given "
            "files or directories."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULE[,RULE...]",
        help=(
            "run only the named rules (comma-separated); the "
            "unused-suppression audit is scoped to them"
        ),
    )
    parser.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help=(
            "fail (exit 1) if total rule wall time, index build "
            "included, exceeds this many seconds — CI's smoke budget"
        ),
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the formatted report to PATH instead of stdout",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also print findings silenced by pragmas",
    )
    parser.add_argument(
        "--root", default=None,
        help=(
            "project root for cross-file rules (docs/, README.md); "
            "auto-detected from the nearest pyproject.toml by default"
        ),
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.select is not None:
        names = [n.strip() for n in args.select.split(",") if n.strip()]
        try:
            rules = rules_by_name(names)
        except KeyError as exc:
            parser.error(f"unknown rule {exc.args[0]!r} in --select "
                         "(see --list-rules)")
    else:
        rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.name}: {rule.description}")
        return 0

    try:
        report = analyze(args.paths, rules, root=args.root)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    lines: list[str] = []
    if args.format == "json":
        payload = {
            "files_scanned": report.files_scanned,
            "parse_errors": report.parse_errors,
            "rules_run": report.rules_run,
            "rule_timings": {
                name: round(seconds, 6)
                for name, seconds in sorted(report.rule_timings.items())
            },
            "findings": [f.to_dict() for f in report.findings],
            "suppressed": [f.to_dict() for f in report.suppressed],
        }
        lines.append(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "sarif":
        document = to_sarif(report, rules, root=report.root)
        lines.append(json.dumps(document, indent=2))
    else:
        for finding in report.findings:
            lines.append(finding.render())
        if args.show_suppressed:
            for finding in report.suppressed:
                lines.append(f"[suppressed] {finding.render()}")
        lines.append(
            f"{len(report.findings)} finding(s), "
            f"{len(report.suppressed)} suppressed, "
            f"{report.files_scanned} file(s) scanned"
        )

    text = "\n".join(lines) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)

    if args.time_budget is not None:
        spent = sum(report.rule_timings.values())
        if spent > args.time_budget:
            print(
                f"error: analysis took {spent:.2f}s, over the "
                f"{args.time_budget:.2f}s budget "
                f"(slowest: {_slowest(report.rule_timings)})",
                file=sys.stderr,
            )
            return 1

    return 0 if report.clean else 1


def _slowest(timings: "dict[str, float]") -> str:
    if not timings:
        return "n/a"
    name = max(timings, key=lambda key: timings[key])
    return f"{name} at {timings[name]:.2f}s"


if __name__ == "__main__":
    sys.exit(main())
