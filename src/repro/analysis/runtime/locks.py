"""Instrumented locks and the global lock-order graph.

The sanitizer's :class:`~repro.analysis.runtime.sanitizer.Sanitizer`
monitor hands these out from the :mod:`repro.common.locks` factory in
place of plain ``threading`` primitives.  Each lock knows its
*contract name* (``"ClassName.attr"``); every acquisition is recorded
on a per-thread held stack, and acquiring lock B while holding lock A
adds the directed edge ``A -> B`` to a process-global
:class:`LockOrderGraph` together with the stacks of both acquisitions.

A cycle in that graph is a **potential deadlock**: two threads taking
the same pair of locks in opposite orders never need to actually
deadlock during the test run for the hazard to be real — the graph
witnesses the orders that *can* interleave fatally.

Costs are kept off the steady-state path: an acquisition captures a
live frame reference (one ``sys._getframe`` call); stacks are only
*formatted* the first time a given edge is observed.
"""

from __future__ import annotations

import threading
from types import FrameType, TracebackType
from typing import Iterable, Optional

from .findings import RuntimeFinding, format_frame_stack


class _Held:
    """One acquisition a thread currently holds."""

    __slots__ = ("lock", "frame")

    def __init__(self, lock: "SanitizedLock",
                 frame: Optional[FrameType]) -> None:
        self.lock = lock
        self.frame = frame


class _EdgeExample:
    """The first observed occurrence of one lock-order edge."""

    __slots__ = ("outer_stack", "inner_stack", "thread_name")

    def __init__(self, outer_stack: str, inner_stack: str,
                 thread_name: str) -> None:
        self.outer_stack = outer_stack
        self.inner_stack = inner_stack
        self.thread_name = thread_name


class LockOrderGraph:
    """Directed graph of observed nested lock acquisitions.

    Nodes are contract names; an edge ``A -> B`` means some thread
    acquired ``B`` while holding ``A``.  The first example of each edge
    keeps both acquisition stacks for reporting.
    """

    def __init__(self) -> None:
        # A plain threading.Lock on purpose: the graph is sanitizer
        # plumbing, not middleware state, and must never appear in its
        # own edges.
        self._mutex = threading.Lock()
        self._edges: dict[tuple[str, str], _EdgeExample] = {}
        self._edge_threads: dict[tuple[str, str], set[str]] = {}
        self._local = threading.local()

    # -- per-thread held stack ---------------------------------------------

    def _held(self) -> list[_Held]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def record_acquire(self, lock: "SanitizedLock",
                       frame: Optional[FrameType]) -> None:
        """Note that the current thread just acquired ``lock``."""
        held = self._held()
        already_held = any(entry.lock is lock for entry in held)
        if not already_held:
            # A reentrant re-acquisition cannot block, so it
            # contributes no ordering constraint.
            thread_name = threading.current_thread().name
            inner_stack: Optional[str] = None
            for entry in held:
                if entry.lock.name == lock.name:
                    continue
                key = (entry.lock.name, lock.name)
                with self._mutex:
                    # Every occurrence records the holding thread (the
                    # witness file keeps the full set); stacks are only
                    # formatted for the first example of an edge.
                    self._edge_threads.setdefault(key, set()).add(
                        thread_name
                    )
                    known = key in self._edges
                if known:
                    continue
                if inner_stack is None:
                    inner_stack = format_frame_stack(frame)
                example = _EdgeExample(
                    outer_stack=format_frame_stack(entry.frame),
                    inner_stack=inner_stack,
                    thread_name=thread_name,
                )
                with self._mutex:
                    self._edges.setdefault(key, example)
        held.append(_Held(lock, frame))

    def record_release(self, lock: "SanitizedLock") -> None:
        """Note that the current thread released ``lock``."""
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index].lock is lock:
                del held[index]
                return

    def holds(self, lock: "SanitizedLock") -> bool:
        """True when the current thread holds ``lock`` (by identity)."""
        return any(entry.lock is lock for entry in self._held())

    def held_names(self) -> list[str]:
        """Contract names the current thread holds, outermost first."""
        return [entry.lock.name for entry in self._held()]

    # -- the graph ----------------------------------------------------------

    def edges(self) -> dict[tuple[str, str], _EdgeExample]:
        with self._mutex:
            return dict(self._edges)

    def edge_list(self) -> list[list[str]]:
        """Sorted ``[outer, inner]`` pairs (witness-file material)."""
        with self._mutex:
            return sorted([outer, inner] for outer, inner in self._edges)

    def edge_records(self) -> list[dict[str, object]]:
        """Sorted edge records with every observed holding thread.

        This is the v2 witness-file material: each record carries the
        names of all threads ever seen holding the outer lock while
        taking the inner one, not just the first example's thread.
        """
        with self._mutex:
            return [
                {
                    "outer": outer,
                    "inner": inner,
                    "threads": sorted(
                        self._edge_threads.get((outer, inner), ())
                    ),
                }
                for outer, inner in sorted(self._edges)
            ]

    def cycles(self) -> list[tuple[str, ...]]:
        """Every distinct simple cycle among the observed edges."""
        with self._mutex:
            edges = set(self._edges)
        return find_cycles(edges)

    def cycle_findings(self) -> list[RuntimeFinding]:
        """One :class:`RuntimeFinding` per distinct cycle."""
        examples = self.edges()
        findings = []
        for cycle in self.cycles():
            path = " -> ".join(cycle + (cycle[0],))
            sites: list[tuple[str, str]] = []
            for index, outer in enumerate(cycle):
                inner = cycle[(index + 1) % len(cycle)]
                example = examples.get((outer, inner))
                if example is None:
                    continue
                sites.append((
                    f"'{outer}' held (thread {example.thread_name})",
                    example.outer_stack,
                ))
                sites.append((
                    f"'{inner}' then acquired under it",
                    example.inner_stack,
                ))
            findings.append(
                RuntimeFinding(
                    rule="lock-order-cycle",
                    message=(
                        f"potential deadlock: locks are acquired in a "
                        f"cycle {path}"
                    ),
                    sites=tuple(sites),
                )
            )
        return findings


def find_cycles(edges: Iterable[tuple[str, str]]) -> list[tuple[str, ...]]:
    """Distinct simple cycles in a directed graph, canonically rotated.

    Small-graph implementation: for every edge ``u -> v``, find a
    shortest path back from ``v`` to ``u``; the edge plus the path is a
    cycle.  Cycles are deduplicated by rotating each to start at its
    smallest node, so ``A->B->A`` and ``B->A->B`` report once.
    """
    adjacency: dict[str, set[str]] = {}
    for outer, inner in edges:
        adjacency.setdefault(outer, set()).add(inner)

    def shortest_path(start: str, goal: str) -> Optional[list[str]]:
        if start == goal:
            return [start]
        frontier = [start]
        came_from: dict[str, str] = {start: start}
        while frontier:
            nxt: list[str] = []
            for node in frontier:
                for neighbor in sorted(adjacency.get(node, ())):
                    if neighbor in came_from:
                        continue
                    came_from[neighbor] = node
                    if neighbor == goal:
                        path = [goal]
                        while path[-1] != start:
                            path.append(came_from[path[-1]])
                        return list(reversed(path))
                    nxt.append(neighbor)
            frontier = nxt
        return None

    seen: set[tuple[str, ...]] = set()
    cycles: list[tuple[str, ...]] = []
    for outer, inner in sorted(edges):
        path = shortest_path(inner, outer)
        if path is None:
            continue
        # path is inner..outer; prepending outer closes the loop
        # (a len-1 path means inner == outer: a self-loop edge).
        nodes = [outer] + path[:-1] if len(path) > 1 else [outer]
        pivot = nodes.index(min(nodes))
        canonical = tuple(nodes[pivot:] + nodes[:pivot])
        if canonical not in seen:
            seen.add(canonical)
            cycles.append(canonical)
    return cycles


class SanitizedLock:
    """A ``threading.Lock`` stand-in wired into the lock-order graph."""

    _reentrant = False

    def __init__(self, name: str, graph: LockOrderGraph) -> None:
        self.name = name
        self._graph = graph
        self._inner = self._make_inner()

    def _make_inner(self) -> "threading.Lock | threading.RLock":  # type: ignore[valid-type]
        return threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        import sys
        frame = sys._getframe(1)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._graph.record_acquire(self, frame)
        return acquired

    def release(self) -> None:
        self._graph.record_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def held_by_current_thread(self) -> bool:
        """True when the calling thread holds this lock instance."""
        return self._graph.holds(self)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type: Optional[type],
                 exc_value: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.release()

    def __repr__(self) -> str:
        kind = "SanitizedRLock" if self._reentrant else "SanitizedLock"
        return f"{kind}({self.name!r})"


class SanitizedRLock(SanitizedLock):
    """The reentrant variant (reentry records no ordering edges)."""

    _reentrant = True

    def _make_inner(self) -> "threading.Lock | threading.RLock":  # type: ignore[valid-type]
        return threading.RLock()

    def locked(self) -> bool:
        # RLock has no locked() before 3.12; approximate via holder.
        return self.held_by_current_thread()
