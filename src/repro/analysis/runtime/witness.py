"""Resource witness and the checked-in lock-order witness file.

Two witnesses live here:

* :class:`ResourceWitness` — runtime create-vs-close tracking for
  executors, futures, staged files and worker threads.  Anything
  created but never closed by report time is a **leak finding** that
  carries the creation stack, so "who forgot to shut this down" is
  answered by the report, not by a debugger.

* the **lock-order witness file** (``lock_order.witness.json`` at the
  repo root) — the blessed set of nested-acquisition edges.  The
  static ``lock-order`` rule merges the edges it can see in the AST
  with this file and fails on any cycle; the sanitizer can emit an
  updated edge list so the file never goes stale by hand-editing.

The witness file format is versioned.  Version 1 stored bare
``[outer, inner]`` pairs; version 2 stores one record per edge with
the names of every thread observed holding the outer lock while
taking the inner one, plus an optional human ``justification`` for
edges the static lock-set analysis cannot derive (consumed by
``witness_check --static-diff``).  :func:`load_witness` reads both;
:func:`save_witness` always writes version 2.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Iterable, Optional

from .findings import RuntimeFinding, capture_stack

#: Name of the checked-in witness file, looked up at the project root.
WITNESS_FILENAME = "lock_order.witness.json"

#: Format version written by :func:`save_witness`.
WITNESS_VERSION = 2


class _LiveResource:
    """One tracked object that has been created and not yet closed."""

    __slots__ = ("kind", "detail", "thread_name", "stack", "seq")

    def __init__(self, kind: str, detail: str, thread_name: str,
                 stack: str, seq: int) -> None:
        self.kind = kind
        self.detail = detail
        self.thread_name = thread_name
        self.stack = stack
        self.seq = seq


class ResourceWitness:
    """Tracks create/close pairs for pool-and-pipeline resources.

    Keys objects by ``id()`` without holding strong references beyond
    the bookkeeping record itself is unnecessary — the witness *does*
    not keep the object, only its identity, so tracking never extends
    a resource's lifetime.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._live: dict[tuple[str, int], _LiveResource] = {}
        self._seq = 0
        self._created = 0
        self._closed = 0

    def created(self, kind: str, obj: object, detail: str = "") -> None:
        """Record that ``obj`` came into being (captures the stack now)."""
        stack = capture_stack(skip=1)
        record = _LiveResource(
            kind=kind,
            detail=detail,
            thread_name=threading.current_thread().name,
            stack=stack,
            seq=0,
        )
        with self._mutex:
            self._seq += 1
            self._created += 1
            record.seq = self._seq
            self._live[(kind, id(obj))] = record

    def closed(self, kind: str, obj: object) -> None:
        """Record that ``obj`` was shut down / retired."""
        with self._mutex:
            if self._live.pop((kind, id(obj)), None) is not None:
                self._closed += 1

    def live(self) -> list[_LiveResource]:
        """Records still open, in creation order."""
        with self._mutex:
            return sorted(self._live.values(), key=lambda r: r.seq)

    def counts(self) -> dict[str, int]:
        with self._mutex:
            return {
                "created": self._created,
                "closed": self._closed,
                "live": len(self._live),
            }

    def leak_findings(self) -> list[RuntimeFinding]:
        """One finding per still-open resource."""
        findings = []
        for record in self.live():
            what = f"{record.kind} ({record.detail})" if record.detail \
                else record.kind
            findings.append(
                RuntimeFinding(
                    rule="resource-leak",
                    message=(
                        f"{what} was created but never closed "
                        f"(thread {record.thread_name})"
                    ),
                    sites=(("created here", record.stack),),
                )
            )
        return findings


def find_witness_file(start: Optional[str] = None) -> Optional[str]:
    """Locate ``lock_order.witness.json`` walking up from ``start``."""
    current = os.path.abspath(start or os.getcwd())
    while True:
        candidate = os.path.join(current, WITNESS_FILENAME)
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent


@dataclass(frozen=True)
class WitnessEdge:
    """One blessed nested-acquisition edge ``outer -> inner``.

    ``threads`` holds the names of every thread the sanitizer has seen
    take ``inner`` while holding ``outer``; ``justification`` is a
    human note explaining a purely-runtime edge the static lock-set
    analysis cannot derive (``witness_check --static-diff`` treats a
    blessed-but-underivable edge without one as a finding).
    """

    outer: str
    inner: str
    threads: tuple[str, ...] = ()
    justification: Optional[str] = None

    @property
    def pair(self) -> tuple[str, str]:
        return (self.outer, self.inner)


def load_witness(path: str) -> list[WitnessEdge]:
    """Every blessed edge from a witness file, any format version.

    Version is detected from the payload: v2 files carry a ``version``
    key and dict-shaped edge records; v1 files store bare
    ``[outer, inner]`` pairs and still load (with empty thread sets).
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    out: list[WitnessEdge] = []
    for edge in payload.get("edges", []):
        if isinstance(edge, dict):
            justification = edge.get("justification")
            out.append(
                WitnessEdge(
                    outer=str(edge["outer"]),
                    inner=str(edge["inner"]),
                    threads=tuple(
                        str(name) for name in edge.get("threads", [])
                    ),
                    justification=(
                        str(justification)
                        if justification is not None else None
                    ),
                )
            )
        else:
            outer, inner = edge
            out.append(WitnessEdge(outer=str(outer), inner=str(inner)))
    return out


def load_witness_edges(path: str) -> list[tuple[str, str]]:
    """The blessed ``(outer, inner)`` edges from a witness file."""
    return [edge.pair for edge in load_witness(path)]


def merge_witness_edges(*sources: Iterable[WitnessEdge]) \
        -> list[WitnessEdge]:
    """Union of edges from ``sources``, merged per ``(outer, inner)``.

    Thread sets are unioned; the first non-``None`` justification
    wins.  Sorted by pair, so a save of the result is deterministic.
    """
    merged: dict[tuple[str, str], WitnessEdge] = {}
    for source in sources:
        for edge in source:
            previous = merged.get(edge.pair)
            if previous is None:
                merged[edge.pair] = edge
                continue
            merged[edge.pair] = WitnessEdge(
                outer=edge.outer,
                inner=edge.inner,
                threads=tuple(
                    sorted(set(previous.threads) | set(edge.threads))
                ),
                justification=previous.justification
                if previous.justification is not None
                else edge.justification,
            )
    return [merged[pair] for pair in sorted(merged)]


def save_witness(path: str, edges: Iterable[WitnessEdge],
                 description: str = "") -> None:
    """Write a v2 witness file (sorted, deterministic, newline-ended)."""
    records: list[dict[str, object]] = []
    for edge in merge_witness_edges(edges):
        record: dict[str, object] = {
            "outer": edge.outer,
            "inner": edge.inner,
            "threads": sorted(set(edge.threads)),
        }
        if edge.justification is not None:
            record["justification"] = edge.justification
        records.append(record)
    payload = {
        "description": description or (
            "Blessed nested lock-acquisition edges (outer, inner) with "
            "the thread names observed holding them. Checked by the "
            "static lock-order rule and refreshed from sanitizer runs; "
            "a cycle through these edges fails CI."
        ),
        "version": WITNESS_VERSION,
        "edges": records,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def save_witness_edges(path: str, edges: Iterable[tuple[str, str]],
                       description: str = "") -> None:
    """Write a witness file from bare pairs (no thread information)."""
    save_witness(
        path,
        [WitnessEdge(outer=outer, inner=inner) for outer, inner in edges],
        description,
    )
