"""Resource witness and the checked-in lock-order witness file.

Two witnesses live here:

* :class:`ResourceWitness` — runtime create-vs-close tracking for
  executors, futures, staged files and worker threads.  Anything
  created but never closed by report time is a **leak finding** that
  carries the creation stack, so "who forgot to shut this down" is
  answered by the report, not by a debugger.

* the **lock-order witness file** (``lock_order.witness.json`` at the
  repo root) — the blessed set of nested-acquisition edges.  The
  static ``lock-order`` rule merges the edges it can see in the AST
  with this file and fails on any cycle; the sanitizer can emit an
  updated edge list so the file never goes stale by hand-editing.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Iterable, Optional

from .findings import RuntimeFinding, capture_stack

#: Name of the checked-in witness file, looked up at the project root.
WITNESS_FILENAME = "lock_order.witness.json"


class _LiveResource:
    """One tracked object that has been created and not yet closed."""

    __slots__ = ("kind", "detail", "thread_name", "stack", "seq")

    def __init__(self, kind: str, detail: str, thread_name: str,
                 stack: str, seq: int) -> None:
        self.kind = kind
        self.detail = detail
        self.thread_name = thread_name
        self.stack = stack
        self.seq = seq


class ResourceWitness:
    """Tracks create/close pairs for pool-and-pipeline resources.

    Keys objects by ``id()`` without holding strong references beyond
    the bookkeeping record itself is unnecessary — the witness *does*
    not keep the object, only its identity, so tracking never extends
    a resource's lifetime.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._live: dict[tuple[str, int], _LiveResource] = {}
        self._seq = 0
        self._created = 0
        self._closed = 0

    def created(self, kind: str, obj: object, detail: str = "") -> None:
        """Record that ``obj`` came into being (captures the stack now)."""
        stack = capture_stack(skip=1)
        record = _LiveResource(
            kind=kind,
            detail=detail,
            thread_name=threading.current_thread().name,
            stack=stack,
            seq=0,
        )
        with self._mutex:
            self._seq += 1
            self._created += 1
            record.seq = self._seq
            self._live[(kind, id(obj))] = record

    def closed(self, kind: str, obj: object) -> None:
        """Record that ``obj`` was shut down / retired."""
        with self._mutex:
            if self._live.pop((kind, id(obj)), None) is not None:
                self._closed += 1

    def live(self) -> list[_LiveResource]:
        """Records still open, in creation order."""
        with self._mutex:
            return sorted(self._live.values(), key=lambda r: r.seq)

    def counts(self) -> dict[str, int]:
        with self._mutex:
            return {
                "created": self._created,
                "closed": self._closed,
                "live": len(self._live),
            }

    def leak_findings(self) -> list[RuntimeFinding]:
        """One finding per still-open resource."""
        findings = []
        for record in self.live():
            what = f"{record.kind} ({record.detail})" if record.detail \
                else record.kind
            findings.append(
                RuntimeFinding(
                    rule="resource-leak",
                    message=(
                        f"{what} was created but never closed "
                        f"(thread {record.thread_name})"
                    ),
                    sites=(("created here", record.stack),),
                )
            )
        return findings


def find_witness_file(start: Optional[str] = None) -> Optional[str]:
    """Locate ``lock_order.witness.json`` walking up from ``start``."""
    current = os.path.abspath(start or os.getcwd())
    while True:
        candidate = os.path.join(current, WITNESS_FILENAME)
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent


def load_witness_edges(path: str) -> list[tuple[str, str]]:
    """The blessed ``(outer, inner)`` edges from a witness file."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    edges = payload.get("edges", [])
    return [(str(outer), str(inner)) for outer, inner in edges]


def save_witness_edges(path: str, edges: Iterable[tuple[str, str]],
                       description: str = "") -> None:
    """Write a witness file (sorted, deterministic, newline-terminated)."""
    payload = {
        "description": description or (
            "Blessed nested lock-acquisition edges (outer, inner). "
            "Checked by the static lock-order rule and refreshed from "
            "sanitizer runs; a cycle through these edges fails CI."
        ),
        "edges": sorted([outer, inner] for outer, inner in set(edges)),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
