"""The concurrency sanitizer: a :class:`~repro.common.locks.LockMonitor`.

When installed (see :func:`repro.analysis.runtime.activate`) every lock
built through the :mod:`repro.common.locks` factory becomes a
:class:`~repro.analysis.runtime.locks.SanitizedLock` feeding the global
lock-order graph, every ``resource_created``/``resource_closed`` call
lands in the :class:`~repro.analysis.runtime.witness.ResourceWitness`,
and classes with guarded-by contracts get an instrumented
``__setattr__`` that verifies the declared lock is actually held by the
writing thread.

The guarded-by check mirrors the static rule's semantics: writes inside
``__init__`` are exempt (an object under construction is not shared),
which the runtime layer implements with an *armed* sentinel set when
the wrapped ``__init__`` returns.
"""

from __future__ import annotations

import threading
from types import ModuleType
from typing import Any, Callable, Optional

from ...common.locks import LockMonitor
from .contracts import ClassContract, ContractRegistry
from .findings import RuntimeFinding, capture_frame, format_frame_stack
from .locks import LockOrderGraph, SanitizedLock, SanitizedRLock
from .witness import ResourceWitness

#: Attribute set (via ``object.__setattr__``) once ``__init__`` returns;
#: guarded-by enforcement only applies to armed instances.
_ARMED = "_repro_sanitizer_armed"


class _PatchedClass:
    """Bookkeeping for one instrumented class (restores on deactivate)."""

    __slots__ = ("cls", "original_init", "original_setattr",
                 "original_delattr", "contract")

    def __init__(self, cls: type, original_init: Callable[..., None],
                 original_setattr: Callable[..., None],
                 original_delattr: Callable[..., None],
                 contract: ClassContract) -> None:
        self.cls = cls
        self.original_init = original_init
        self.original_setattr = original_setattr
        self.original_delattr = original_delattr
        self.contract = contract


class Sanitizer(LockMonitor):
    """Runtime concurrency checker behind the ``repro.common`` lock hook."""

    def __init__(self, registry: Optional[ContractRegistry] = None) -> None:
        self.graph = LockOrderGraph()
        self.witness = ResourceWitness()
        self.registry = registry if registry is not None else \
            ContractRegistry()
        self._mutex = threading.Lock()
        self._locks: dict[str, list[SanitizedLock]] = {}
        self._violations: list[RuntimeFinding] = []
        self._violation_keys: set[tuple[str, str, str, int]] = set()
        self._patched: list[_PatchedClass] = []

    # -- LockMonitor hooks --------------------------------------------------

    def make_lock(self, name: str) -> Any:
        lock = SanitizedLock(name, self.graph)
        with self._mutex:
            self._locks.setdefault(name, []).append(lock)
        return lock

    def make_rlock(self, name: str) -> Any:
        lock = SanitizedRLock(name, self.graph)
        with self._mutex:
            self._locks.setdefault(name, []).append(lock)
        return lock

    def resource_created(self, kind: str, obj: object,
                         detail: str = "") -> None:
        self.witness.created(kind, obj, detail)

    def resource_closed(self, kind: str, obj: object) -> None:
        self.witness.closed(kind, obj)

    # -- guarded-by instrumentation ----------------------------------------

    def instrument_class(self, cls: type, contract: ClassContract) -> None:
        """Patch ``cls`` so guarded attribute writes verify their lock."""
        sanitizer = self
        original_init = cls.__init__
        original_setattr = cls.__setattr__
        original_delattr = cls.__delattr__

        def patched_init(instance: Any, *args: Any, **kwargs: Any) -> None:
            original_init(instance, *args, **kwargs)
            object.__setattr__(instance, _ARMED, True)

        def patched_setattr(instance: Any, attr: str, value: Any) -> None:
            sanitizer._check_guarded_write(instance, attr, contract)
            original_setattr(instance, attr, value)

        def patched_delattr(instance: Any, attr: str) -> None:
            sanitizer._check_guarded_write(instance, attr, contract)
            original_delattr(instance, attr)

        cls.__init__ = patched_init  # type: ignore[method-assign]
        cls.__setattr__ = patched_setattr  # type: ignore[method-assign]
        cls.__delattr__ = patched_delattr  # type: ignore[method-assign]
        self._patched.append(
            _PatchedClass(cls, original_init, original_setattr,
                          original_delattr, contract)
        )

    def instrument_module(self, module: ModuleType) -> int:
        """Instrument every contract-bearing class found in ``module``.

        Contracts for the module must already be in the registry (via
        ``registry.scan_package``/``scan_file``).  Returns how many
        classes were patched.
        """
        count = 0
        patched = {p.cls for p in self._patched}
        for contract in self.registry.for_module(module.__name__):
            cls = getattr(module, contract.class_name, None)
            if not isinstance(cls, type) or cls in patched:
                continue
            self.instrument_class(cls, contract)
            count += 1
        return count

    def uninstrument(self) -> None:
        """Restore every patched class to its original methods."""
        while self._patched:
            patch = self._patched.pop()
            patch.cls.__init__ = patch.original_init  # type: ignore[method-assign]
            patch.cls.__setattr__ = patch.original_setattr  # type: ignore[method-assign]
            patch.cls.__delattr__ = patch.original_delattr  # type: ignore[method-assign]

    def _check_guarded_write(self, instance: Any, attr: str,
                             contract: ClassContract) -> None:
        decl = contract.guards.get(attr)
        if decl is None:
            return
        if getattr(instance, _ARMED, False) is not True:
            return  # still inside __init__ — construction is exempt
        lock = getattr(instance, decl.lock, None)
        if not isinstance(lock, SanitizedLock):
            return  # plain lock: the runtime layer cannot observe it
        if lock.held_by_current_thread():
            return
        frame = capture_frame(skip=2)
        key = (
            contract.class_name,
            attr,
            frame.f_code.co_filename if frame is not None else "?",
            frame.f_lineno if frame is not None else 0,
        )
        with self._mutex:
            if key in self._violation_keys:
                return
            self._violation_keys.add(key)
        held = self.graph.held_names()
        held_note = f" (holding: {', '.join(held)})" if held else ""
        finding = RuntimeFinding(
            rule="guarded-by",
            message=(
                f"{contract.class_name}.{attr} is declared "
                f"'guarded by self.{decl.lock}' "
                f"({contract.path}:{decl.line}) but was written by "
                f"thread {threading.current_thread().name} without "
                f"holding it{held_note}"
            ),
            sites=(
                ("unguarded write", format_frame_stack(frame)),
            ),
        )
        with self._mutex:
            self._violations.append(finding)

    # -- reporting ----------------------------------------------------------

    def guard_findings(self) -> list[RuntimeFinding]:
        with self._mutex:
            return list(self._violations)

    def findings(self) -> list[RuntimeFinding]:
        """All current findings: guard violations, cycles, leaks."""
        return (
            self.guard_findings()
            + self.graph.cycle_findings()
            + self.witness.leak_findings()
        )

    def observed_edges(self) -> list[list[str]]:
        """Sorted lock-order edges seen so far (witness-file refresh)."""
        return self.graph.edge_list()

    def report(self) -> dict[str, Any]:
        """JSON-serialisable run report (the CI artifact)."""
        findings = self.findings()
        return {
            "findings": [f.to_dict() for f in findings],
            "lock_order_edges": self.observed_edges(),
            # v2 witness material: the same edges with every thread
            # name observed holding them (witness_check --update
            # merges these into the blessed file).
            "lock_order_edge_records": self.graph.edge_records(),
            "resources": self.witness.counts(),
            "clean": not findings,
        }

    def render_findings(self) -> str:
        """Human-readable rendering of every finding."""
        findings = self.findings()
        if not findings:
            return "sanitizer: no findings"
        return "\n\n".join(f.render() for f in findings)
