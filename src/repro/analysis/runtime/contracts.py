"""The guarded-by contract registry, shared by static and runtime checks.

Concurrency state in this codebase is documented where it is
initialised::

    self._lock = new_lock("ScanWorkerPool._lock")
    #: guarded by self._lock
    self._executor = None

That comment is a *contract*: every mutation of the attribute outside
``__init__`` must happen while the named lock is held.  Before this
module existed the static ``guarded-by`` rule parsed the declarations
privately; now the parsing lives here, once, and is consumed by

* the static rule (:mod:`repro.analysis.rules.guarded_by`), which
  checks the contract *lexically* — mutations must sit inside a
  ``with self.<lock>:`` block; and
* the runtime sanitizer (:mod:`repro.analysis.runtime.sanitizer`),
  which checks it *dynamically* — instrumented ``__setattr__`` verifies
  the named lock is actually held by the writing thread, catching
  violations the AST cannot see (writes through helpers, interleavings,
  locks passed around).

Declarations are recognised on the assignment's own line or on the
comment line directly above it, anywhere in the class body.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from importlib import util as importlib_util
from typing import Iterator, Optional, Sequence

#: The declaration comment, e.g. ``#: guarded by self._lock``.
GUARD_DECLARATION = re.compile(r"#:?\s*guarded by\s+self\.(\w+)")

#: The meter-parity declaration, written on the comment line directly
#: above a ``def``::
#:
#:     #: meter parity with ForwardCursor.rows
#:     def partitions(self, ...): ...
#:
#: Multiple targets compose with ``+`` (the declaring function must
#: charge the *union* multiset)::
#:
#:     #: meter parity with ForwardCursor.__init__ + ForwardCursor.rows
#:
#: Targets are dotted qualname suffixes resolved against the scanned
#: project; the ``meter-parity`` static rule checks that the declaring
#: function charges exactly the same category multiset as its targets.
PARITY_DECLARATION = re.compile(
    r"#:?\s*meter parity with\s+([\w.]+(?:\s*\+\s*[\w.]+)*)"
)


@dataclass(frozen=True)
class GuardDecl:
    """One declared guard: which lock, and where it was declared."""

    lock: str
    line: int


@dataclass(frozen=True)
class ParityDecl:
    """One meter-parity declaration above a function definition."""

    #: The declaring function's name (the ``def`` directly below).
    function: str
    #: Qualname suffixes whose charge multisets must union-match.
    targets: tuple[str, ...]
    #: Line of the ``def`` the declaration is attached to.
    line: int


def parity_targets(text: str) -> "tuple[str, ...] | None":
    """Parse one ``#: meter parity with A + B`` comment line."""
    match = PARITY_DECLARATION.search(text)
    if match is None:
        return None
    return tuple(
        part.strip()
        for part in match.group(1).split("+")
        if part.strip()
    )


def parities_for_module(tree: ast.AST,
                        lines: Sequence[str]) -> "list[ParityDecl]":
    """Every parity declaration in a parsed module.

    The declaration is recognised on the comment line directly above
    the ``def`` — or above its first decorator when decorated.
    """
    out: "list[ParityDecl]" = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        first_line = (
            node.decorator_list[0].lineno
            if node.decorator_list else node.lineno
        )
        targets = parity_targets(_comment_above(lines, first_line))
        if targets:
            out.append(ParityDecl(
                function=node.name, targets=targets, line=node.lineno,
            ))
    return out


def _line_text(lines: Sequence[str], number: int) -> str:
    """The 1-based source line (empty string when out of range)."""
    if 1 <= number <= len(lines):
        return lines[number - 1]
    return ""


def _comment_above(lines: Sequence[str], number: int) -> str:
    """The stripped comment-only line directly above ``number``."""
    text = _line_text(lines, number - 1).strip()
    return text if text.startswith("#") else ""


def guards_for_class(class_node: ast.ClassDef,
                     lines: Sequence[str]) -> dict[str, GuardDecl]:
    """``attr -> GuardDecl`` for one class.

    A guard is discovered from any ``self.<attr> = ...`` assignment in
    the class whose own line, or the comment line directly above it,
    carries the ``guarded by self.<lock>`` declaration.
    """
    guards: dict[str, GuardDecl] = {}
    for node in ast.walk(class_node):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            for offset, text in (
                (0, _line_text(lines, node.lineno)),
                (-1, _comment_above(lines, node.lineno)),
            ):
                match = GUARD_DECLARATION.search(text)
                if match is not None:
                    guards[target.attr] = GuardDecl(
                        lock=match.group(1),
                        line=node.lineno + offset,
                    )
    return guards


def guards_by_class(tree: ast.AST,
                    lines: Sequence[str]) -> dict[ast.ClassDef, dict[str, GuardDecl]]:
    """Guard contracts for every class in a parsed module."""
    return {
        node: guards_for_class(node, lines)
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
    }


@dataclass(frozen=True)
class ClassContract:
    """The guarded-by contracts of one class, plus how to find it."""

    #: Importable dotted module name ("" when scanned from a bare file).
    module: str
    class_name: str
    path: str
    guards: dict[str, GuardDecl] = field(default_factory=dict)

    @property
    def qualified_name(self) -> str:
        prefix = f"{self.module}." if self.module else ""
        return f"{prefix}{self.class_name}"


class ContractRegistry:
    """Every guarded-by contract discovered in a set of sources.

    Built once (per activation or per analysis run) and consumed by
    both checkers, so the two can never drift on what the declaration
    syntax means.
    """

    def __init__(self) -> None:
        self._contracts: list[ClassContract] = []
        #: ``(module, ParityDecl)`` pairs, in scan order.
        self._parities: list[tuple[str, ParityDecl]] = []

    def __iter__(self) -> Iterator[ClassContract]:
        return iter(self._contracts)

    def __len__(self) -> int:
        return len(self._contracts)

    def add(self, contract: ClassContract) -> None:
        self._contracts.append(contract)

    @property
    def parities(self) -> list[tuple[str, ParityDecl]]:
        """Every meter-parity declaration seen, with its module."""
        return list(self._parities)

    def scan_file(self, path: str, module: str = "") -> list[ClassContract]:
        """Parse one file; registers (and returns) its class contracts."""
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        return self.scan_source(text, path=path, module=module)

    def scan_source(self, text: str, path: str = "<string>",
                    module: str = "") -> list[ClassContract]:
        """Parse source text; registers (and returns) class contracts."""
        tree = ast.parse(text, filename=path)
        lines = text.splitlines()
        for parity in parities_for_module(tree, lines):
            self._parities.append((module, parity))
        found: list[ClassContract] = []
        for class_node, guards in guards_by_class(tree, lines).items():
            if not guards:
                continue
            contract = ClassContract(
                module=module,
                class_name=class_node.name,
                path=path,
                guards=guards,
            )
            self.add(contract)
            found.append(contract)
        return found

    def scan_package(self, package: str) -> list[ClassContract]:
        """Walk an importable package's source tree for contracts.

        Modules are *not* imported here — only parsed.  The sanitizer
        imports just the modules that actually carry contracts when it
        instruments them.
        """
        spec = importlib_util.find_spec(package)
        if spec is None or not spec.submodule_search_locations:
            raise ImportError(f"cannot locate package {package!r}")
        found: list[ClassContract] = []
        for root in spec.submodule_search_locations:
            for dirpath, dirnames, filenames in os.walk(root):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    path = os.path.join(dirpath, filename)
                    relative = os.path.relpath(path, root)
                    parts = relative[:-3].replace(os.sep, ".").split(".")
                    if parts[-1] == "__init__":
                        parts = parts[:-1]
                    module = ".".join([package] + [p for p in parts if p])
                    found.extend(self.scan_file(path, module=module))
        return found

    def for_module(self, module: str) -> list[ClassContract]:
        """Contracts registered under one importable module name."""
        return [c for c in self._contracts if c.module == module]

    def find(self, class_name: str,
             module: str = "") -> Optional[ClassContract]:
        """The first contract matching ``class_name`` (and module)."""
        for contract in self._contracts:
            if contract.class_name != class_name:
                continue
            if module and contract.module != module:
                continue
            return contract
        return None
