"""Runtime concurrency sanitizer for the repro middleware.

Static analysis (:mod:`repro.analysis.rules`) proves properties the AST
can see; this package checks the same contracts *while the code runs*:

* **lock-order** — every nested lock acquisition grows a global graph;
  a cycle is a potential deadlock, reported with the acquisition stack
  of every edge.
* **guarded-by** — the ``#: guarded by self._lock`` declarations (parsed
  once by :mod:`.contracts`, shared with the static rule) are enforced
  on live objects: writing a declared attribute without its lock held
  is a finding with the writer's stack.
* **resource-leak** — executors, futures, staged files and worker
  threads are witnessed at creation and must be closed; anything still
  open at report time is a finding with its creation stack.

Activation installs a :class:`.sanitizer.Sanitizer` as the
:mod:`repro.common.locks` monitor and patches every contract-bearing
class, so the middleware itself needs no knowledge of this package::

    from repro.analysis import runtime

    sanitizer = runtime.activate()
    try:
        ...  # run the workload
        findings = sanitizer.findings()
    finally:
        runtime.deactivate()

The pytest plugin in ``tests/conftest.py`` does exactly this when
``REPRO_SANITIZE=1`` is set.
"""

from __future__ import annotations

import json
from importlib import import_module
from typing import Any, Optional

from ...common.locks import install_monitor, reset_monitor
from .contracts import (
    GUARD_DECLARATION,
    ClassContract,
    ContractRegistry,
    GuardDecl,
    guards_by_class,
    guards_for_class,
)
from .findings import RuntimeFinding, capture_stack
from .locks import LockOrderGraph, SanitizedLock, SanitizedRLock, find_cycles
from .sanitizer import Sanitizer
from .witness import (
    WITNESS_FILENAME,
    WITNESS_VERSION,
    ResourceWitness,
    WitnessEdge,
    find_witness_file,
    load_witness,
    load_witness_edges,
    merge_witness_edges,
    save_witness,
    save_witness_edges,
)

__all__ = [
    "GUARD_DECLARATION",
    "WITNESS_FILENAME",
    "WITNESS_VERSION",
    "ClassContract",
    "ContractRegistry",
    "GuardDecl",
    "LockOrderGraph",
    "ResourceWitness",
    "RuntimeFinding",
    "SanitizedLock",
    "SanitizedRLock",
    "Sanitizer",
    "WitnessEdge",
    "activate",
    "active",
    "capture_stack",
    "deactivate",
    "find_cycles",
    "find_witness_file",
    "guards_by_class",
    "guards_for_class",
    "load_witness",
    "load_witness_edges",
    "merge_witness_edges",
    "save_witness",
    "save_witness_edges",
    "write_report",
]

_active: Optional[Sanitizer] = None


def active() -> Optional[Sanitizer]:
    """The currently activated sanitizer, if any."""
    return _active


def activate(package: str = "repro") -> Sanitizer:
    """Install the sanitizer process-wide and return it.

    Scans ``package`` for guarded-by contracts, installs the sanitizer
    as the :mod:`repro.common.locks` monitor (so locks built *from now
    on* are instrumented) and patches every contract-bearing class for
    guarded-by enforcement.  Idempotent: a second call returns the
    already-active sanitizer.
    """
    global _active
    if _active is not None:
        return _active
    registry = ContractRegistry()
    registry.scan_package(package)
    sanitizer = Sanitizer(registry)
    install_monitor(sanitizer)
    for contract in registry:
        if not contract.module:
            continue
        module = import_module(contract.module)
        sanitizer.instrument_module(module)
    _active = sanitizer
    return sanitizer


def deactivate() -> Optional[Sanitizer]:
    """Undo :func:`activate`: restore classes and the no-op monitor.

    Returns the sanitizer that was active (its findings remain
    readable after deactivation), or None.
    """
    global _active
    sanitizer = _active
    if sanitizer is not None:
        sanitizer.uninstrument()
        reset_monitor()
        _active = None
    return sanitizer


def write_report(sanitizer: Sanitizer, path: str) -> dict[str, Any]:
    """Write the sanitizer's JSON report to ``path``; returns the dict."""
    report = sanitizer.report()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report
