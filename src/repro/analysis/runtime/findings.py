"""Runtime findings: what the sanitizer reports and how it renders.

A runtime finding differs from a static :class:`repro.analysis.findings.Finding`
in one essential way: it is anchored to *stacks observed at runtime*,
not to a single source line.  A lock-order cycle names every edge of
the cycle with the stack that acquired each lock; a guarded-by
violation carries the writing thread's stack plus the declaration
site; a resource leak carries the creation stack of the object that
was never closed.
"""

from __future__ import annotations

import os
import sys
import traceback
from dataclasses import dataclass, field
from types import FrameType
from typing import Optional

#: Frames whose file lives under this directory are sanitizer
#: plumbing and are trimmed from reported stacks.
_RUNTIME_DIR = os.path.dirname(os.path.abspath(__file__))


def capture_frame(skip: int = 1) -> Optional[FrameType]:
    """The caller's live frame, ``skip`` levels up (cheap: no formatting).

    Formatting is deferred to :func:`format_frame_stack`, which is only
    called for the *first* occurrence of an edge/violation — steady-state
    lock traffic never pays for stack rendering.
    """
    try:
        return sys._getframe(skip + 1)
    except ValueError:  # stack shallower than requested
        return None


def format_frame_stack(frame: Optional[FrameType]) -> str:
    """Render ``frame``'s stack, trimming sanitizer-internal frames."""
    if frame is None:
        return "  <stack unavailable>\n"
    summary = traceback.extract_stack(frame)
    kept = [
        entry for entry in summary
        if not os.path.abspath(entry.filename).startswith(_RUNTIME_DIR)
    ]
    text = "".join(traceback.format_list(kept or list(summary)))
    return text or "  <stack unavailable>\n"


def capture_stack(skip: int = 1) -> str:
    """Format the current stack immediately (creation-site tracking)."""
    return format_frame_stack(capture_frame(skip + 1))


@dataclass(frozen=True)
class RuntimeFinding:
    """One sanitizer finding with its supporting stacks."""

    #: Which checker fired: ``lock-order-cycle``, ``guarded-by`` or
    #: ``resource-leak`` (mirrors the static rule naming).
    rule: str
    #: One-line description of the violation.
    message: str
    #: Labelled stacks: ``(what this stack shows, formatted stack)``.
    sites: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def render(self) -> str:
        """Multi-line human report: message plus every labelled stack."""
        lines = [f"[{self.rule}] {self.message}"]
        for label, stack in self.sites:
            lines.append(f"  * {label}:")
            for row in stack.rstrip("\n").splitlines():
                lines.append(f"    {row}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation (report artifact)."""
        return {
            "rule": self.rule,
            "message": self.message,
            "sites": [
                {"label": label, "stack": stack} for label, stack in self.sites
            ],
        }
