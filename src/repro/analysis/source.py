"""Parsed source files and suppression comments.

A :class:`SourceFile` bundles everything a rule needs about one module:
the raw text, split lines, the parsed AST, and the per-line suppression
table.  Suppressions use the project's own pragma syntax::

    risky_call()  # repro-lint: disable=<rule-name> -- justification

Several rules may be disabled on one line
(``disable=rule-a,rule-b``).  The text after ``--`` is the mandatory
justification: the engine reports a suppression with no justification
as an (unsuppressible) ``unjustified-suppression`` finding, so every
silenced rule carries an explanation a reviewer can audit.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

#: The suppression pragma.  Group 1: comma-separated rule names;
#: group 2: the justification after `` -- `` (may be absent).
_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+?)"
    r"(?:\s+--\s*(.*))?\s*$"
)


@dataclass
class Suppression:
    """One ``# repro-lint: disable=...`` pragma on one line."""

    line: int
    rules: tuple[str, ...]
    justification: str
    #: Rules of this pragma that actually matched a finding (filled in
    #: by the engine so unused suppressions can be reported).
    used: set[str] = field(default_factory=set)

    @property
    def justified(self) -> bool:
        return bool(self.justification.strip())


class SourceFile:
    """One parsed Python module under analysis."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        #: line number -> :class:`Suppression`
        self.suppressions: dict[int, Suppression] = {}
        for number, line in enumerate(self.lines, start=1):
            match = _PRAGMA.search(line)
            if match is None:
                continue
            rules = tuple(
                name.strip()
                for name in match.group(1).split(",")
                if name.strip()
            )
            self.suppressions[number] = Suppression(
                line=number,
                rules=rules,
                justification=(match.group(2) or ""),
            )

    def line_text(self, number: int) -> str:
        """The 1-based source line (empty string when out of range)."""
        if 1 <= number <= len(self.lines):
            return self.lines[number - 1]
        return ""

    def comment_above(self, number: int) -> str:
        """The stripped comment-only line directly above ``number``."""
        text = self.line_text(number - 1).strip()
        return text if text.startswith("#") else ""

    def __repr__(self) -> str:
        return f"SourceFile({self.path!r})"
