"""Findings: what a rule reports and how it is rendered.

A finding is one concrete violation anchored to a file and line.  The
engine sorts findings deterministically (path, line, column, rule) so
output is diff-stable across runs — CI gates and the self-scan test
both depend on that.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a concrete source location."""

    #: Path of the offending file, as given to the engine.
    path: str
    #: 1-based line the finding anchors to (suppressions attach here).
    line: int
    #: 0-based column, as reported by the AST node.
    column: int
    #: Rule name, e.g. ``guarded-by``.
    rule: str
    #: Human-readable description of the violation.
    message: str

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation (``--format json``)."""
        return asdict(self)

    def render(self) -> str:
        """The human one-liner: ``path:line:col: [rule] message``."""
        return f"{self.path}:{self.line}:{self.column}: " \
               f"[{self.rule}] {self.message}"
