"""repro.analysis — the project's self-hosted static-analysis suite.

AST-based lint rules that encode the invariants the middleware's own
bug history (PRs 1–3) established: lock discipline on declared
attributes, future lifecycle on the scan pool, resource cleanup on
every exit path, pickle-safety of process-worker payloads, and the
config-knob/CLI/docs three-way contract.

Run it with ``python -m repro.analysis src`` (exit 0 = clean) or call
:func:`analyze` directly.  See ``docs/static_analysis.md`` for the
rule catalog and the suppression syntax
(``# repro-lint: disable=<rule> -- <why>``).
"""

from __future__ import annotations

from .engine import AnalysisReport, Project, analyze
from .findings import Finding
from .rules import ALL_RULES, default_rules

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "Finding",
    "Project",
    "analyze",
    "default_rules",
]
