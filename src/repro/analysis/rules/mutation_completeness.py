"""Rule: every table-mutating path reaches all its maintenance hooks.

PR 8 shipped three bugs of one shape: a mutation path that skipped a
maintenance obligation (INSERT charged no index maintenance, DELETE
never consulted indexes).  Nothing crashed — indexes silently went
stale and the meter silently under-billed.  This rule turns the shape
into a build failure.

A **mutation sink** is a page method that physically writes rows
(``Page.append``/``Page.tombstone``, discovered structurally).  A
**mutation entry** is the innermost *metered* function whose call
graph reaches a sink — innermost, because the obligations belong to
the function that owns the meter for the mutation (``_execute_insert``),
not to every caller above it.  For each entry the rule demands, within
the entry's reachable set:

* a **version-counter bump** — an assignment/augassign to a
  ``self.*version*`` attribute.  Version counters are also how the
  version-keyed :class:`StatisticsCatalog` and the columnar cache
  notice staleness, so this one hook carries two invariants;
* a **statistics update** — satisfied by the version bump (the
  catalogs are version-keyed) or by an explicit ``invalidate*`` call;
* **index maintenance**, both halves: the physical half (a ``for ...
  in self.*index*:`` loop applying the mutation to each index) and
  the metered half (a literal ``"index"`` charge).  The metered half
  is waived when the entry *creates the table it mutates* (a
  reachable ``create_table`` call): a freshly materialised temp table
  has no indexes to maintain, and its population cost is priced by
  its own categories.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..engine import Project
from ..findings import Finding
from ..project_index import FunctionInfo, ProjectIndex
from .base import Rule, call_name
from .meter_common import charged_categories, is_metered, \
    mutation_sinks
from .unmetered_row_access import short_path


def _bumps_version(node: ast.AST) -> bool:
    for child in ast.walk(node):
        target: Optional[ast.expr] = None
        if isinstance(child, ast.AugAssign):
            target = child.target
        elif isinstance(child, ast.Assign) and len(child.targets) == 1:
            target = child.targets[0]
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and "version" in target.attr
        ):
            return True
    return False


def _maintains_indexes(node: ast.AST) -> bool:
    """A ``for index in self._indexes:`` loop mutating each index."""
    for child in ast.walk(node):
        if not isinstance(child, ast.For):
            continue
        iterated = child.iter
        if not (
            isinstance(iterated, ast.Attribute)
            and isinstance(iterated.value, ast.Name)
            and iterated.value.id == "self"
            and "index" in iterated.attr
        ):
            continue
        if not isinstance(child.target, ast.Name):
            continue
        loop_var = child.target.id
        for inner in ast.walk(child):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and isinstance(inner.func.value, ast.Name)
                and inner.func.value.id == loop_var
                and inner.func.attr in
                ("insert", "remove", "add", "delete")
            ):
                return True
    return False


def _calls_create_table(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and \
                call_name(child) == "create_table":
            return True
    return False


class MutationCompletenessRule(Rule):

    name = "mutation-completeness"
    description = (
        "every metered mutation path must bump the table version "
        "(statistics staleness), maintain indexes physically, and "
        "charge index maintenance"
    )
    needs_index = True

    def check(self, project: Project) -> Iterable[Finding]:
        index = project.index()
        sinks = mutation_sinks(index)
        if not sinks:
            return []
        metered = {
            qualname for qualname, info in index.functions.items()
            if is_metered(info)
        }

        findings: "list[Finding]" = []
        for qualname in sorted(metered):
            info = index.functions[qualname]
            # Innermost entry: a path to the sink not running through
            # another metered function (which would own the obligation).
            path = index.find_path(qualname, sinks,
                                   blocked=metered - {qualname})
            if path is None:
                continue
            findings.extend(self._check_entry(index, info, path))
        return findings

    def _check_entry(self, index: ProjectIndex, info: FunctionInfo,
                     path: "list[str]") -> "list[Finding]":
        reach = index.reachable(info.qualname)
        nodes = [
            index.functions[q].node
            for q in reach if q in index.functions
        ]
        bumps = any(_bumps_version(n) for n in nodes)
        invalidates = any(
            isinstance(child, ast.Call)
            and (call_name(child) or "").startswith("invalidate")
            for n in nodes for child in ast.walk(n)
        )
        physical = any(_maintains_indexes(n) for n in nodes)
        charged = {
            category for n in nodes
            for category in charged_categories(n)
        }
        creates_own = any(_calls_create_table(n) for n in nodes)

        anchor: ast.AST = info.node
        if len(path) > 1:
            sites = index.call_sites_into(info.qualname, path[1])
            if sites:
                anchor = sites[0].node
        rendered = short_path(path)
        out: "list[Finding]" = []
        if not bumps:
            out.append(self.finding(
                info.source, anchor,
                f"mutation path ({rendered}) never bumps a table "
                "version counter, so version-keyed caches and "
                "statistics cannot notice the write",
            ))
        if not bumps and not invalidates:
            out.append(self.finding(
                info.source, anchor,
                f"mutation path ({rendered}) neither bumps a version "
                "counter nor invalidates statistics",
            ))
        if not physical:
            out.append(self.finding(
                info.source, anchor,
                f"mutation path ({rendered}) never applies the write "
                "to attached indexes (no 'for ... in self._indexes' "
                "maintenance loop is reachable)",
            ))
        if "index" not in charged and not creates_own:
            out.append(self.finding(
                info.source, anchor,
                f"mutation path ({rendered}) charges no 'index' "
                "maintenance cost — the PR-8 under-billing bug class",
            ))
        return out


__all__ = ["MutationCompletenessRule"]
