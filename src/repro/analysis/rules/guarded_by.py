"""guarded-by: lock-discipline checking for declared attributes.

Concurrency state in this codebase is documented at the point of
initialisation::

    class ScanWorkerPool:
        def __init__(self, ...):
            self._lock = new_lock("ScanWorkerPool._lock")
            #: guarded by self._lock
            self._executor = None

The declaration is a contract the whole class must honour: every
*mutation* of ``self._executor`` outside ``__init__`` must happen
lexically inside a ``with self._lock:`` block.  (Reads are not
checked — several of the guarded attributes are intentionally read
unlocked on single-writer paths; the invariant the PR-1..3 bugs broke
was always an unguarded *write*.)

Declaration parsing lives in :mod:`repro.analysis.runtime.contracts`,
shared with the runtime sanitizer so the static and dynamic checkers
can never disagree about what ``#: guarded by self._lock`` means.

Mutations recognised: plain assignment, augmented assignment,
annotated assignment, and ``del`` of ``self.<attr>``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Project
from ..findings import Finding
from ..runtime import contracts
from ..source import SourceFile
from .base import Rule, iter_functions, self_attr, walk_with_stack


class GuardedByRule(Rule):
    name = "guarded-by"
    description = (
        "attributes declared '#: guarded by self.<lock>' may only be "
        "mutated inside a 'with' on that lock (outside __init__)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for source in project.files:
            yield from self._check_file(source)

    def _check_file(self, source: SourceFile) -> Iterable[Finding]:
        guards_by_class = contracts.guards_by_class(source.tree, source.lines)
        for owner, function in iter_functions(source.tree):
            if owner is None or function.name == "__init__":
                continue
            guards = guards_by_class.get(owner)
            if guards:
                yield from self._check_function(source, function, guards)

    def _check_function(self, source: SourceFile,
                        function: ast.FunctionDef,
                        guards: dict[str, contracts.GuardDecl]) \
            -> Iterable[Finding]:
        for node, stack in walk_with_stack(function):
            mutated: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                mutated = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                mutated = [node.target]
            elif isinstance(node, ast.Delete):
                mutated = list(node.targets)
            # `a, self.x = ...` mutates self.x too.
            mutated = [
                element
                for target in mutated
                for element in (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
            ]
            for target in mutated:
                attr = self_attr(target)
                if attr is None or attr not in guards:
                    continue
                lock = guards[attr].lock
                held = {
                    name
                    for with_node in stack
                    if isinstance(with_node, ast.With)
                    for name in self._locks_of(with_node)
                }
                if lock not in held:
                    yield self.finding(
                        source, node,
                        f"'self.{attr}' is declared guarded by "
                        f"'self.{lock}' but is mutated in "
                        f"'{function.name}' without holding it",
                    )

    @staticmethod
    def _locks_of(with_node: ast.With) -> list[str]:
        out = []
        for item in with_node.items:
            name = self_attr(item.context_expr)
            if name is not None:
                out.append(name)
        return out
