"""guarded-by: lock-discipline checking for declared attributes.

Concurrency state in this codebase is documented at the point of
initialisation::

    class ScanWorkerPool:
        def __init__(self, ...):
            self._lock = new_lock("ScanWorkerPool._lock")
            #: guarded by self._lock
            self._executor = None

The declaration is a contract the whole class must honour: every
*mutation* of ``self._executor`` outside ``__init__`` must happen with
the lock held.  (Reads are not checked — several of the guarded
attributes are intentionally read unlocked on single-writer paths; the
invariant the PR-1..3 bugs broke was always an unguarded *write*.)

Since the lock-set layer (:mod:`repro.analysis.lockset`) the check is
*interprocedural*: a mutation is clean when the lock is held lexically
(``with self._lock:`` around the write) **or** provably held on entry
along every caller path into the mutating function — the common
``with self._lock: self._apply(...)`` helper pattern no longer needs a
suppression.  Conversely, a helper reachable from even one caller path
that does not hold the lock is a finding, and the finding names that
path.  A function whose entry state is ⊥ (reached through dynamic
dispatch, escaped as a callback, dunder/decorated) is *unknown*, not
unlocked: the rule stays silent and the runtime sanitizer owns the
residue.

Declaration parsing lives in :mod:`repro.analysis.runtime.contracts`,
shared with the runtime sanitizer so the static and dynamic checkers
can never disagree about what ``#: guarded by self._lock`` means.

Mutations recognised: plain assignment, augmented assignment,
annotated assignment, and ``del`` of ``self.<attr>``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Project
from ..findings import Finding
from ..lockset import LockSetAnalysis, short_path
from ..project_index import FunctionInfo
from ..runtime import contracts
from ..source import SourceFile
from .base import Rule, iter_functions, self_attr, walk_with_stack, \
    with_lock_names


def guarded_mutations(
    function: ast.FunctionDef,
    guards: dict[str, contracts.GuardDecl],
) -> Iterable[tuple[ast.AST, str, set[str]]]:
    """``(stmt, attr, lexically_held_lock_attrs)`` for guarded writes.

    Shared with the atomicity rule: one definition of "a mutation of a
    guarded attribute" and of which lock attributes the enclosing
    ``with`` statements hold.
    """
    for node, stack in walk_with_stack(function):
        mutated: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            mutated = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            mutated = [node.target]
        elif isinstance(node, ast.Delete):
            mutated = list(node.targets)
        # `a, self.x = ...` mutates self.x too.
        mutated = [
            element
            for target in mutated
            for element in (
                target.elts
                if isinstance(target, (ast.Tuple, ast.List))
                else [target]
            )
        ]
        for target in mutated:
            attr = self_attr(target)
            if attr is None or attr not in guards:
                continue
            yield node, attr, with_lock_names(stack)


class GuardedByRule(Rule):
    name = "guarded-by"
    description = (
        "attributes declared '#: guarded by self.<lock>' may only be "
        "mutated with that lock held — lexically or on every caller "
        "path (outside __init__)"
    )
    needs_index = True
    needs_lockset = True

    def check(self, project: Project) -> Iterable[Finding]:
        lockset = project.lockset()
        by_node = {
            id(info.node): info
            for info in lockset.index.functions.values()
        }
        for source in project.files:
            yield from self._check_file(source, lockset, by_node)

    def _check_file(self, source: SourceFile,
                    lockset: LockSetAnalysis,
                    by_node: dict[int, FunctionInfo]) \
            -> Iterable[Finding]:
        guards_by_class = contracts.guards_by_class(source.tree, source.lines)
        for owner, function in iter_functions(source.tree):
            if owner is None or function.name == "__init__":
                continue
            guards = guards_by_class.get(owner)
            if guards:
                yield from self._check_function(
                    source, owner, function, guards, lockset, by_node
                )

    def _check_function(self, source: SourceFile, owner: ast.ClassDef,
                        function: ast.FunctionDef,
                        guards: dict[str, contracts.GuardDecl],
                        lockset: LockSetAnalysis,
                        by_node: dict[int, FunctionInfo]) \
            -> Iterable[Finding]:
        info = by_node.get(id(function))
        for node, attr, held in guarded_mutations(function, guards):
            lock = guards[attr].lock
            if lock in held:
                continue  # lexically inside ``with self.<lock>:``.
            message = (
                f"'self.{attr}' is declared guarded by "
                f"'self.{lock}' but is mutated in "
                f"'{function.name}' without holding it"
            )
            if info is None:
                # Nested def / not a call-graph node: the closure runs
                # later under unknown locks — ⊥, sanitizer territory.
                continue
            qualname = info.qualname
            class_qualname = qualname.rsplit(".", 1)[0]
            entry = lockset.must_holds(qualname)
            if entry is None:
                continue  # ⊥: unknown, never "unlocked".
            canonical = lockset.registry.canonical_guard(
                lockset.index, class_qualname, lock
            )
            if canonical in entry:
                continue  # every caller path holds the lock.
            chain = lockset.unlocked_chain(qualname, canonical)
            if len(chain) > 1:
                message += (
                    f" (reached without '{canonical}' via "
                    f"{short_path(chain)})"
                )
            yield self.finding(source, node, message)
