"""Rule: declared twin paths must charge the same category multiset.

The engine keeps growing pairs of code paths that *must* cost the
same: streaming rows vs the columnar cached plan, a cold staged-file
scan vs its warm ``charge_cached_read`` replay, an index fetch through
the planner vs through the auxiliary strategy.  PR 7 and PR 8 both
enforce this at runtime with meter-equality tests — but only for the
pairs somebody remembered to test.  The ``#: meter parity with``
declaration (parsed by the same :class:`ContractRegistry` the runtime
sanitizer uses, see :mod:`repro.analysis.runtime.contracts`) makes the
pairing explicit at the definition site, and this rule checks it
structurally on every run::

    #: meter parity with ForwardCursor.rows
    def partitions(self, ...):
        ...

The declaring function's **literal charge-category multiset**
(nested closures included — plan builders charge from inner
functions) must equal the *union* multiset of its targets
(``A + B`` sums the targets' multisets).  The comparison is lexical,
not transitive: it counts the categories each function charges
itself, which is exactly what the runtime meter-equality tests pin
down per row.  Computed (non-literal) categories on either side make
the declaration unverifiable and are reported as such.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional

from ..engine import Project
from ..findings import Finding
from ..project_index import FunctionInfo, ProjectIndex
from ..runtime.contracts import parity_targets
from .base import Rule
from .meter_common import charge_calls, charged_categories, \
    literal_category


def _render(multiset: "Counter[str]") -> str:
    if not multiset:
        return "{}"
    return "{" + ", ".join(sorted(multiset.elements())) + "}"


class MeterParityRule(Rule):

    name = "meter-parity"
    description = (
        "functions declaring '#: meter parity with <qualname>' must "
        "charge the same category multiset as their targets"
    )
    needs_index = True

    def check(self, project: Project) -> Iterable[Finding]:
        index = project.index()
        findings: "list[Finding]" = []
        for qualname in sorted(index.functions):
            info = index.functions[qualname]
            targets = self._declaration(info)
            if targets is None:
                continue
            findings.extend(self._check_one(index, info, targets))
        return findings

    @staticmethod
    def _declaration(info: FunctionInfo) -> "Optional[tuple[str, ...]]":
        first_line = (
            info.node.decorator_list[0].lineno
            if info.node.decorator_list else info.node.lineno
        )
        return parity_targets(info.source.comment_above(first_line))

    def _check_one(self, index: ProjectIndex, info: FunctionInfo,
                   targets: "tuple[str, ...]") -> "list[Finding]":
        out: "list[Finding]" = []
        own, own_opaque = self._multiset(info)
        if own_opaque:
            out.append(self.finding(
                info.source, info.node,
                "meter parity cannot be verified: this function "
                "charges a computed (non-literal) category",
            ))
            return out

        expected: "Counter[str]" = Counter()
        unverifiable = False
        for target in targets:
            matches = [
                q for q in index.functions
                if q == target or q.endswith("." + target)
            ]
            if not matches:
                out.append(self.finding(
                    info.source, info.node,
                    f"meter parity target '{target}' does not resolve "
                    "to any function in the scanned project",
                ))
                unverifiable = True
                continue
            if len(matches) > 1:
                shown = ", ".join(sorted(matches)[:3])
                out.append(self.finding(
                    info.source, info.node,
                    f"meter parity target '{target}' is ambiguous "
                    f"({shown}); qualify it further",
                ))
                unverifiable = True
                continue
            resolved = index.functions[matches[0]]
            target_set, target_opaque = self._multiset(resolved)
            if target_opaque:
                out.append(self.finding(
                    info.source, info.node,
                    f"meter parity target '{target}' charges a "
                    "computed (non-literal) category; cannot verify",
                ))
                unverifiable = True
                continue
            expected.update(target_set)

        if not unverifiable and own != expected:
            out.append(self.finding(
                info.source, info.node,
                f"meter parity violated: this function charges "
                f"{_render(own)} but '{' + '.join(targets)}' charges "
                f"{_render(expected)}",
            ))
        return out

    @staticmethod
    def _multiset(info: FunctionInfo) -> "tuple[Counter[str], bool]":
        """The literal charge multiset, plus an any-opaque flag."""
        opaque = any(
            literal_category(call) is None
            for call in charge_calls(info.node)
        )
        return Counter(charged_categories(info.node)), opaque


__all__ = ["MeterParityRule"]
