"""Shared meter-detection helpers for the meter-integrity rule family.

All four rules need the same three observations about a function:

* which of its call expressions are **charge calls** — ``meter.charge
  (category, amount)`` through any receiver whose terminal name
  contains ``meter`` (``meter``, ``self._meter``, ``server.meter``;
  the project never spells a cost meter any other way, and fixtures
  follow suit);
* the **literal category** a charge call names (or ``None`` when the
  category is computed — which ``charge-category`` flags);
* whether the function is **metered** — it can see a cost meter at
  all (a parameter or attribute whose name contains ``meter``), which
  is what makes it an entry point for the reachability rules: a
  function with no meter in scope *cannot* charge, so the obligation
  belongs to its metered callers.

Storage-layer shape discovery also lives here: page classes (define
``live_rows``), heap classes (carry a list-of-pages attribute), the
row-access sinks and the mutation sinks derived from them.  The rules
share one vocabulary for "what is a row" so their findings compose.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..project_index import ClassInfo, FunctionInfo, ProjectIndex


def is_charge_call(node: ast.Call) -> bool:
    """True for ``<something metered>.charge(...)``."""
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "charge"):
        return False
    receiver = func.value
    if isinstance(receiver, ast.Attribute):
        name = receiver.attr
    elif isinstance(receiver, ast.Name):
        name = receiver.id
    else:
        return False
    return "meter" in name.lower()


def charge_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Charge calls lexically under ``node``, nested defs included.

    Nested defs count because closures like the columnar cache's
    ``charge_scan`` execute as part of their enclosing plan function.
    """
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and is_charge_call(child):
            yield child


def category_arg(node: ast.Call) -> Optional[ast.expr]:
    """The category argument expression of a charge call."""
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "category":
            return keyword.value
    return None


def literal_category(node: ast.Call) -> Optional[str]:
    """The literal category string, or None when it is computed."""
    arg = category_arg(node)
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    return None


def charged_categories(node: ast.AST) -> "list[str]":
    """Literal categories of every charge call under ``node`` (multiset)."""
    out: "list[str]" = []
    for call in charge_calls(node):
        category = literal_category(call)
        if category is not None:
            out.append(category)
    return out


def is_metered(info: FunctionInfo) -> bool:
    """True when the function can see a cost meter at all."""
    args = info.node.args
    for arg in (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)):
        if "meter" in arg.arg.lower():
            return True
        annotation = arg.annotation
        if isinstance(annotation, ast.Name) and \
                "meter" in annotation.id.lower():
            return True
        if isinstance(annotation, ast.Constant) and \
                isinstance(annotation.value, str) and \
                "meter" in annotation.value.lower():
            return True
    for node in ast.walk(info.node):
        if isinstance(node, ast.Attribute) and \
                "meter" in node.attr.lower():
            return True
        if isinstance(node, ast.Name) and "meter" in node.id.lower():
            return True
    return False


# -- storage shape discovery ------------------------------------------------


def page_classes(index: ProjectIndex) -> "dict[str, ClassInfo]":
    """Classes that define ``live_rows`` — the page layer."""
    return {
        qualname: info for qualname, info in index.classes.items()
        if "live_rows" in info.methods
    }


def heap_classes(index: ProjectIndex,
                 pages: "dict[str, ClassInfo]") -> "dict[str, ClassInfo]":
    """Classes carrying a list-of-pages attribute — the heap layer."""
    out: "dict[str, ClassInfo]" = {}
    for qualname, info in index.classes.items():
        for elem in info.attr_elem_types.values():
            if elem in pages:
                out[qualname] = info
                break
    return out


def _page_list_attrs(info: ClassInfo,
                     pages: "dict[str, ClassInfo]") -> "set[str]":
    return {
        attr for attr, elem in info.attr_elem_types.items()
        if elem in pages
    }


def _touches_page_list(func: ast.FunctionDef,
                       attrs: "set[str]") -> bool:
    """True when the method indexes into or For-loops its page list."""
    for node in ast.walk(func):
        probe: Optional[ast.expr] = None
        if isinstance(node, ast.Subscript):
            probe = node.value
        elif isinstance(node, ast.For):
            probe = node.iter
            if isinstance(probe, ast.Call) and probe.args:
                # ``for i, page in enumerate(self._pages):``
                probe = probe.args[0]
        if (
            isinstance(probe, ast.Attribute)
            and isinstance(probe.value, ast.Name)
            and probe.value.id == "self"
            and probe.attr in attrs
        ):
            return True
    return False


def row_access_sinks(index: ProjectIndex) -> "set[str]":
    """Qualnames whose execution touches heap rows.

    Two layers: every page class's ``live_rows``, and every heap
    method that indexes into or iterates its page list (scan, fetch,
    insert, delete...).  Methods that only *measure* the page list
    (``len(self._pages)``) are excluded on purpose.
    """
    pages = page_classes(index)
    sinks: "set[str]" = set()
    for info in pages.values():
        sinks.add(info.methods["live_rows"])
    for heap_info in heap_classes(index, pages).values():
        attrs = _page_list_attrs(heap_info, pages)
        for name, qualname in heap_info.methods.items():
            method = index.functions.get(qualname)
            if method is not None and \
                    _touches_page_list(method.node, attrs):
                sinks.add(qualname)
    return sinks


def _mutates_rows(func: ast.FunctionDef) -> bool:
    """True for page methods that write ``self.rows``."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in ("append", "insert", "pop"):
            target = node.func.value
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == "self" and \
                    "rows" in target.attr:
                return True
        if isinstance(node, ast.Assign):
            for assign_target in node.targets:
                if isinstance(assign_target, ast.Subscript):
                    probe = assign_target.value
                    if isinstance(probe, ast.Attribute) and \
                            isinstance(probe.value, ast.Name) and \
                            probe.value.id == "self" and \
                            "rows" in probe.attr:
                        return True
    return False


def mutation_sinks(index: ProjectIndex) -> "set[str]":
    """Page methods that physically write rows (append/tombstone)."""
    sinks: "set[str]" = set()
    for info in page_classes(index).values():
        for qualname in info.methods.values():
            method = index.functions.get(qualname)
            if method is not None and _mutates_rows(method.node):
                sinks.add(qualname)
    return sinks


def charging_functions(index: ProjectIndex) -> "set[str]":
    """Every function with a lexical charge call (nested defs count)."""
    return {
        qualname for qualname, info in index.functions.items()
        if any(True for _ in charge_calls(info.node))
    }
