"""resource-lifecycle: opened resources must be closed on every path.

The §4 middleware opens real resources mid-scan: ``StagedFile``
writers, worker pools, prefetch producers, staging writer threads.
PRs 1–3 each fixed a leak where one of them survived a failing scan.
Two checks encode what those fixes established:

**1. Cleanup handlers must catch BaseException.**  A ``try`` whose
handler cleans resources up (calls ``abandon_file``, ``release``,
``abort``, ...) and re-raises exists precisely so that *nothing* can
leak past it — but ``except Exception:`` lets ``KeyboardInterrupt``
and ``SystemExit`` through with the writers still open.  Any
cleanup-and-reraise handler narrower than ``BaseException`` is a
finding.

**2. Locally opened resources need an exception-path closer.**  When a
function assigns the result of a *known opener* (``StagedFile(...)``,
``ScanWorkerPool(...)``, ``PipelinedStagingWriter(...)``,
``ParallelStagingWriter(...)``, ``_PartitionProducer(...)``,
``.open_file(...)``, builtin ``open(...)``) to a local name, it owns
that resource.  Ownership ends when the resource is used as a context
manager, returned, yielded, or stored into an attribute/container
(escape).  An owned resource requires a *closer* call
(``close``/``seal``/``abort``/``stop``/``delete``/``shutdown``/...)
on the name — and at least one closer must sit inside an ``except``
handler or ``finally`` block, because the normal-path closer alone is
exactly the bug class PR 3 fixed.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Project
from ..findings import Finding
from ..source import SourceFile
from .base import Rule, call_name, iter_functions, self_attr, walk_with_stack

#: Constructor / method names whose result is an owned resource.
OPENERS = {
    "StagedFile",
    "ScanWorkerPool",
    "PipelinedStagingWriter",
    "ParallelStagingWriter",
    "_PartitionProducer",
    "ShmShipper",
    "open_file",
    "open",
}

#: Method names that end a resource's lifetime.
CLOSERS = {"close", "seal", "abort", "stop", "delete", "shutdown",
           "retire_broken", "cancel", "terminate", "cleanup", "join"}

#: Method names that count as cleanup work inside an except handler.
CLEANUP_VERBS = {"abandon_file", "cancel_memory_reservation", "release",
                 "close", "abort", "stop", "delete", "drain", "seal",
                 "shutdown", "retire_broken", "rollback_to",
                 "_release_cc_reservations"}


def _handler_catches_only_exception(handler: ast.ExceptHandler) -> bool:
    """True for ``except Exception`` (alone or in a tuple)."""
    node = handler.type
    if node is None:
        return False  # bare except == BaseException
    names = []
    if isinstance(node, ast.Tuple):
        names = [e.id for e in node.elts if isinstance(e, ast.Name)]
    elif isinstance(node, ast.Name):
        names = [node.id]
    return bool(names) and "BaseException" not in names and \
        "Exception" in names


class ResourceLifecycleRule(Rule):
    name = "resource-lifecycle"
    description = (
        "opened writers/pools/producers must be sealed, aborted or "
        "closed on all exit paths, including the raise path"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for source in project.files:
            for _, function in iter_functions(source.tree):
                yield from self._check_cleanup_handlers(source, function)
                yield from self._check_owned_resources(source, function)

    # -- check 1: except-too-narrow ------------------------------------

    def _check_cleanup_handlers(self, source: SourceFile,
                                function: ast.FunctionDef) -> \
            Iterable[Finding]:
        for node in ast.walk(function):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if not _handler_catches_only_exception(handler):
                    continue
                reraises = any(
                    isinstance(sub, ast.Raise) and sub.exc is None
                    for stmt in handler.body
                    for sub in ast.walk(stmt)
                )
                cleans = any(
                    isinstance(sub, ast.Call)
                    and call_name(sub) in CLEANUP_VERBS
                    for stmt in handler.body
                    for sub in ast.walk(stmt)
                )
                if reraises and cleans:
                    yield self.finding(
                        source, handler,
                        "cleanup-and-reraise handler catches Exception; "
                        "a KeyboardInterrupt here leaks the resources "
                        "it cleans up — catch BaseException",
                    )

    # -- check 2: owned locals -----------------------------------------

    def _check_owned_resources(self, source: SourceFile,
                               function: ast.FunctionDef) -> \
            Iterable[Finding]:
        owned: dict[str, ast.AST] = {}
        for node, stack in walk_with_stack(function):
            if not (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and call_name(node.value) in OPENERS):
                continue
            if len(node.targets) != 1 or \
                    not isinstance(node.targets[0], ast.Name):
                continue
            owned[node.targets[0].id] = node

        for name, node in owned.items():
            if self._escapes(function, name):
                continue
            closers = self._closer_calls(function, name)
            if not closers:
                yield self.finding(
                    source, node,
                    f"resource '{name}' is opened here but no "
                    "close/seal/abort/stop/delete is ever called on it",
                )
                continue
            if not any(self._inside_exception_path(function, call)
                       for call in closers):
                yield self.finding(
                    source, node,
                    f"resource '{name}' is only closed on the normal "
                    "path; an exception between open and close leaks "
                    "it — close it in an except handler or finally "
                    "block too",
                )

    @staticmethod
    def _escapes(function: ast.FunctionDef, name: str) -> bool:
        for node in ast.walk(function):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None and any(
                    isinstance(sub, ast.Name) and sub.id == name
                    for sub in ast.walk(value)
                ):
                    return True
            if isinstance(node, ast.Assign) and any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets
            ):
                if any(isinstance(sub, ast.Name) and sub.id == name
                       for sub in ast.walk(node.value)):
                    return True
            if isinstance(node, ast.Call) and \
                    call_name(node) in {"append", "add", "setdefault"}:
                if any(isinstance(arg, ast.Name) and arg.id == name
                       for arg in node.args):
                    return True
            if isinstance(node, ast.With):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name) and expr.id == name:
                        return True
        return False

    @staticmethod
    def _closer_calls(function: ast.FunctionDef, name: str) -> list[ast.Call]:
        out = []
        for node in ast.walk(function):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in CLOSERS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                out.append(node)
        return out

    @staticmethod
    def _inside_exception_path(function: ast.FunctionDef,
                               call: ast.Call) -> bool:
        """True when ``call`` sits inside an except handler or finally."""
        for node, stack in walk_with_stack(function):
            if node is not call:
                continue
            for ancestor in stack:
                if isinstance(ancestor, ast.Try):
                    for handler in ancestor.handlers:
                        if any(sub is call for stmt in handler.body
                               for sub in ast.walk(stmt)):
                            return True
                    if any(sub is call for stmt in ancestor.finalbody
                           for sub in ast.walk(stmt)):
                        return True
                if isinstance(ancestor, ast.ExceptHandler):
                    return True
        return False
