"""knob-consistency: every config knob is reachable and documented.

``MiddlewareConfig`` is the single tuning surface of the middleware —
but a knob only *exists* for users if the CLI exposes it and the docs
mention it.  PRs 2 and 3 each added config fields
(``scan_prefetch_partitions``, ``scan_split_writers``) whose CLI flags
and docs lagged behind by a review round.  This rule makes the
three-way contract checkable:

* **CLI flag** — every public field of the ``MiddlewareConfig``
  dataclass needs a matching ``add_argument`` flag somewhere in the
  scanned files: ``--field-name`` (underscores → dashes), or
  ``--no-field-name`` for booleans defaulting to ``True``, or an
  entry in :data:`ALIASES` for historically named flags;
* **docs mention** — the field name (or its flag) must appear in at
  least one of ``docs/*.md`` / ``README.md`` under the project root;
* **env documentation** — every ``REPRO_*`` environment variable the
  config module reads must also appear in the docs.

The rule is cross-file: it locates the config module (the scanned file
defining a dataclass named ``MiddlewareConfig``) and collects flags
from *all* scanned files, so fixture projects exercise it without
path conventions.
"""

from __future__ import annotations

import ast
import glob
import os
import re
from typing import Iterable

from ..engine import Project
from ..findings import Finding
from ..source import SourceFile
from .base import Rule

#: Fields whose CLI flag predates the naming convention.
ALIASES = {
    "memory_bytes": ["--memory"],
    "file_staging": ["--no-staging", "--staging"],
    "memory_staging": ["--no-staging", "--staging"],
}

_ENV_PATTERN = re.compile(r"\bREPRO_[A-Z0-9_]+\b")


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        probe = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        if isinstance(probe, ast.Name) and probe.id == "dataclass":
            return True
        if isinstance(probe, ast.Attribute) and probe.attr == "dataclass":
            return True
    return False


def _find_config(project: Project) -> \
        "tuple[SourceFile, ast.ClassDef] | tuple[None, None]":
    for source in project.files:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and \
                    node.name == "MiddlewareConfig" and _is_dataclass(node):
                return source, node
    return None, None


def _config_fields(class_node: ast.ClassDef) -> \
        "list[tuple[str, ast.AnnAssign, bool]]":
    """``(name, node, defaults_to_true)`` for every public field."""
    out = []
    for stmt in class_node.body:
        if not (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        default_true = (
            isinstance(stmt.value, ast.Constant)
            and stmt.value.value is True
        )
        out.append((name, stmt, default_true))
    return out


def _declared_flags(project: Project) -> set[str]:
    """Every ``--flag`` string literal passed to ``add_argument``."""
    flags: set[str] = set()
    for source in project.files:
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "add_argument"):
                continue
            for arg in node.args:
                if isinstance(arg, ast.Constant) and \
                        isinstance(arg.value, str) and \
                        arg.value.startswith("--"):
                    flags.add(arg.value)
    return flags


def _docs_text(root: str) -> str:
    chunks = []
    for pattern in ("README.md", os.path.join("docs", "*.md")):
        for path in sorted(glob.glob(os.path.join(root, pattern))):
            try:
                with open(path, encoding="utf-8") as handle:
                    chunks.append(handle.read())
            except OSError:
                continue
    return "\n".join(chunks)


class KnobConsistencyRule(Rule):
    name = "knob-consistency"
    description = (
        "every MiddlewareConfig field needs a CLI flag, a docs mention, "
        "and documentation for any REPRO_* env var it reads"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        source, class_node = _find_config(project)
        if source is None or class_node is None:
            return
        flags = _declared_flags(project)
        docs = _docs_text(project.root)
        for name, node, default_true in _config_fields(class_node):
            dashed = name.replace("_", "-")
            expected = ALIASES.get(name) or (
                [f"--no-{dashed}"] if default_true else [f"--{dashed}"]
            )
            if not any(flag in flags for flag in expected):
                yield self.finding(
                    source, node,
                    f"config field '{name}' has no CLI flag; expected "
                    f"one of {', '.join(expected)}",
                )
            if name not in docs and not any(f in docs for f in expected):
                yield self.finding(
                    source, node,
                    f"config field '{name}' is not mentioned in "
                    "README.md or docs/*.md",
                )
        for env in sorted(set(_ENV_PATTERN.findall(source.text))):
            if env not in docs:
                yield self.finding(
                    source, source.tree,
                    f"environment variable '{env}' is read by the "
                    "config module but never documented in README.md "
                    "or docs/*.md",
                )
