"""Rule: no metered path may touch heap rows without charging.

The paper's cost claims only hold if *every* row access that happens
on behalf of a metered operation shows up on the meter.  The failure
mode is always the same: an executor or cursor entry point (a function
that can see a :class:`CostMeter`) calls two or three hops down into
the storage layer, each hop looks innocent, and the page iteration at
the bottom is free.

Structurally: a **row-access sink** is a page class's ``live_rows`` or
a heap method that indexes/iterates its page list (discovered by
:mod:`.meter_common`, not hard-coded).  An **entry point** is any
metered function outside the storage layer.  The rule flags an entry
point ``F`` when

* ``F`` itself contains no charge call (a function that charges
  *anything* is trusted to have priced its own row work — granularity
  is per function, documented in docs/static_analysis.md), and
* the call graph contains a path from ``F`` to a sink whose
  intermediate functions all charge nothing either.

Functions that charge act as blockers, so one metered hop sanitises
everything below it.  Findings are deduplicated to the *innermost*
uncharged entry: if every offending path from ``F`` runs through
another flagged function ``G``, only ``G`` is reported — fixing (or
suppressing) the inner function is what actually discharges the path.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Project
from ..findings import Finding
from ..project_index import FunctionInfo, ProjectIndex
from .base import Rule
from .meter_common import charging_functions, heap_classes, is_metered, \
    page_classes, row_access_sinks


def short_path(path: "list[str]") -> str:
    """A readable call path: last two qualname components per hop."""
    return " -> ".join(".".join(q.split(".")[-2:]) for q in path)


def _storage_qualnames(index: ProjectIndex) -> "set[str]":
    pages = page_classes(index)
    out: "set[str]" = set()
    for info in list(pages.values()) + \
            list(heap_classes(index, pages).values()):
        out.update(info.methods.values())
    return out


class UnmeteredRowAccessRule(Rule):

    name = "unmetered-row-access"
    description = (
        "a metered entry point reaches heap-row access through a call "
        "path carrying no meter.charge on the way"
    )
    needs_index = True

    def check(self, project: Project) -> Iterable[Finding]:
        index = project.index()
        sinks = row_access_sinks(index)
        if not sinks:
            return []
        chargers = charging_functions(index)
        storage = _storage_qualnames(index)

        candidates: "dict[str, list[str]]" = {}
        for qualname, info in index.functions.items():
            if qualname in storage or qualname in chargers:
                continue
            if not is_metered(info):
                continue
            path = index.find_path(qualname, sinks, blocked=chargers)
            if path is not None:
                candidates[qualname] = path

        findings: "list[Finding]" = []
        flagged = set(candidates)
        for qualname, path in sorted(candidates.items()):
            blocked = chargers | (flagged - {qualname})
            inner_path = index.find_path(qualname, sinks,
                                         blocked=blocked)
            if inner_path is None:
                continue  # every path runs through a reported inner fn
            info = index.functions[qualname]
            findings.append(self._finding_at(index, info, inner_path))
        return findings

    def _finding_at(self, index: ProjectIndex, info: FunctionInfo,
                    path: "list[str]") -> Finding:
        anchor: ast.AST = info.node
        if len(path) > 1:
            sites = index.call_sites_into(info.qualname, path[1])
            if sites:
                anchor = sites[0].node
        return self.finding(
            info.source, anchor,
            f"metered '{info.qualname.split('.')[-1]}' reaches heap "
            f"rows with no charge on the way: {short_path(path)}",
        )


__all__ = ["UnmeteredRowAccessRule", "short_path"]
