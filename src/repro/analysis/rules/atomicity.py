"""atomicity: guarded read-modify-write sequences must be atomic.

Holding the right lock around the *write* is necessary but not
sufficient: ``self._x = self._x + 1`` with the lock taken only around
the assignment, or the check-then-act idiom ::

    if self._cache is None:          # read, unlocked
        with self._lock:
            self._cache = build()    # write, locked

still races — a second thread can interleave between the read and the
write, so both threads observe the stale value.  The ``guarded-by``
rule cannot see this (every individual write is locked); this rule
checks the *sequence*.

Recognised sequences on a ``#: guarded by`` attribute:

* augmented assignment: ``self._x += ...``;
* self-referential assignment: ``self._x = f(self._x, ...)``;
* check-then-act: an ``if`` whose test reads ``self._x`` and whose
  body (or else-branch) writes ``self._x``.

A sequence is atomic when the whole of it sits lexically inside
``with self.<lock>:`` or when the lock-set layer proves the lock held
on entry along every caller path (must-entry).  ⊥ entries are
*unknown* and stay silent, as everywhere in the family.

A non-atomic sequence is only a *race* if two threads can actually
reach it, so findings are gated on the structurally discovered thread
roots (:func:`repro.analysis.lockset.discover_thread_roots`): the
function must be reachable from two distinct roots, or from one root
that is multi-threaded by construction (executor submissions,
``Thread(...)`` in a loop).  The finding names the witnessing root
paths.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..engine import Project
from ..findings import Finding
from ..lockset import LockSetAnalysis, ThreadRoot, short_path
from ..project_index import FunctionInfo
from ..runtime import contracts
from ..source import SourceFile
from .base import Rule, iter_functions, self_attr, walk_with_stack, \
    with_lock_names


class AtomicityRule(Rule):
    name = "atomicity"
    description = (
        "read-modify-write sequences on '#: guarded by' attributes "
        "reachable from two thread roots must hold the lock across "
        "the whole sequence"
    )
    needs_index = True
    needs_lockset = True

    def check(self, project: Project) -> Iterable[Finding]:
        lockset = project.lockset()
        by_node = {
            id(info.node): info
            for info in lockset.index.functions.values()
        }
        for source in project.files:
            yield from self._check_file(source, lockset, by_node)

    def _check_file(self, source: SourceFile,
                    lockset: LockSetAnalysis,
                    by_node: dict[int, FunctionInfo]) \
            -> Iterable[Finding]:
        guards_by_class = contracts.guards_by_class(source.tree, source.lines)
        for owner, function in iter_functions(source.tree):
            if owner is None or function.name == "__init__":
                continue
            guards = guards_by_class.get(owner)
            if not guards:
                continue
            info = by_node.get(id(function))
            if info is None:
                continue  # nested def: ⊥ territory.
            yield from self._check_function(
                source, function, guards, lockset, info
            )

    def _check_function(self, source: SourceFile,
                        function: ast.FunctionDef,
                        guards: dict[str, contracts.GuardDecl],
                        lockset: LockSetAnalysis,
                        info: FunctionInfo) -> Iterable[Finding]:
        qualname = info.qualname
        class_qualname = qualname.rsplit(".", 1)[0]
        entry = lockset.must_holds(qualname)
        if entry is None:
            return  # ⊥: unknown, never "unlocked".
        roots = None  # computed lazily, once per function.
        seen: set[tuple[int, str]] = set()
        for node, attr, kind, held in _rmw_sequences(function, guards):
            if (id(node), attr) in seen:
                continue
            seen.add((id(node), attr))
            lock = guards[attr].lock
            if lock in held:
                continue  # whole sequence inside ``with self.<lock>:``.
            canonical = lockset.registry.canonical_guard(
                lockset.index, class_qualname, lock
            )
            if canonical in entry:
                continue  # every caller already holds the lock.
            if roots is None:
                roots = lockset.roots_reaching(qualname)
            racy_roots = _racy(roots)
            if racy_roots is None:
                continue  # at most one thread can get here.
            yield self.finding(
                source, node,
                f"{kind} on 'self.{attr}' (guarded by 'self.{lock}') "
                f"is not atomic: the lock is not held across the read "
                f"and the write, and the sequence is reachable from "
                f"{_describe_roots(lockset, qualname, racy_roots)}",
            )


def _racy(roots: list[ThreadRoot]) -> list[ThreadRoot] | None:
    """The roots that make a sequence racy, or None when it is not."""
    multi = [root for root in roots if root.multi]
    if multi:
        return multi[:1] if len(roots) == 1 else roots[:2]
    if len(roots) >= 2:
        return roots[:2]
    return None


def _describe_roots(lockset: LockSetAnalysis, qualname: str,
                    roots: list[ThreadRoot]) -> str:
    parts = []
    for root in roots:
        path = lockset.index.find_path(root.qualname, {qualname})
        where = short_path(path) if path else root.qualname
        note = " [multi-threaded]" if root.multi else ""
        parts.append(
            f"thread root '{root.qualname.rsplit('.', 1)[-1]}'"
            f"{note} ({root.kind}: {where})"
        )
    return " and ".join(parts)


def _rmw_sequences(
    function: ast.FunctionDef,
    guards: dict[str, contracts.GuardDecl],
) -> Iterator[tuple[ast.AST, str, str, set[str]]]:
    """``(stmt, attr, kind, lexically_held_lock_attrs)`` sequences."""
    for node, stack in walk_with_stack(function):
        held = with_lock_names(stack)
        if isinstance(node, ast.AugAssign):
            attr = self_attr(node.target)
            if attr is not None and attr in guards:
                yield node, attr, "read-modify-write", held
        elif isinstance(node, ast.Assign):
            reads = _guarded_reads(node.value, guards)
            for target in node.targets:
                for element in (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                ):
                    attr = self_attr(element)
                    if attr is not None and attr in guards \
                            and attr in reads:
                        yield node, attr, "read-modify-write", held
        elif isinstance(node, ast.If):
            tested = _guarded_reads(node.test, guards)
            if not tested:
                continue
            written = _written_attrs(node, guards)
            for attr in sorted(tested & written):
                yield node, attr, "check-then-act", held


def _guarded_reads(node: ast.AST,
                   guards: dict[str, contracts.GuardDecl]) -> set[str]:
    """Guarded attributes read anywhere under ``node``."""
    out: set[str] = set()
    for child in ast.walk(node):
        attr = self_attr(child)
        if attr is not None and attr in guards and \
                isinstance(getattr(child, "ctx", None), ast.Load):
            out.add(attr)
    return out


def _written_attrs(node: ast.If,
                   guards: dict[str, contracts.GuardDecl]) -> set[str]:
    """Guarded attributes written inside an ``if`` body/orelse."""
    out: set[str] = set()
    for stmt in node.body + node.orelse:
        for child in ast.walk(stmt):
            targets: list[ast.AST] = []
            if isinstance(child, ast.Assign):
                targets = list(child.targets)
            elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                targets = [child.target]
            elif isinstance(child, ast.Delete):
                targets = list(child.targets)
            for target in targets:
                for element in (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                ):
                    attr = self_attr(element)
                    if attr is not None and attr in guards:
                        out.add(attr)
    return out
