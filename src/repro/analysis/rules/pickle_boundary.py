"""pickle-boundary: process-worker payloads must be picklable.

``ScanWorkerPool(kind="process")`` ships its work through
``ProcessPoolExecutor.submit`` — everything in the call crosses a
pickle boundary into the worker.  PR 3 established the payload
protocol (plain tuples of arrays and node descriptors, refreshed by
generation); this rule keeps unpicklable state from sneaking back in.

The rule activates only for files that actually touch process pools
(reference ``ProcessPoolExecutor``, ``multiprocessing`` or
``get_context``).  Inside such a file it flags, for every
``.submit(...)`` call and every tuple assigned to a ``*payload*``
variable:

* ``lambda`` expressions and generator expressions — never picklable;
* ``self`` itself — drags the whole object (locks, executors, file
  handles) across the boundary;
* ``self.<attr>`` where the class assigns ``<attr>`` from a known
  unpicklable constructor (``threading.Lock/RLock/Condition/Event``,
  ``open(...)``, a ``ThreadPoolExecutor``/``ProcessPoolExecutor``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Project
from ..findings import Finding
from ..source import SourceFile
from .base import Rule, call_name, self_attr

#: Constructors whose result must never cross the pickle boundary.
UNPICKLABLE_CONSTRUCTORS = {
    "Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore",
    "open", "ThreadPoolExecutor", "ProcessPoolExecutor", "Thread",
}

#: File-level markers that a module works with process pools.
_PROCESS_MARKERS = {"ProcessPoolExecutor", "multiprocessing", "get_context"}


def _file_is_process_scoped(source: SourceFile) -> bool:
    names = {
        node.id for node in ast.walk(source.tree)
        if isinstance(node, ast.Name)
    }
    attrs = {
        node.attr for node in ast.walk(source.tree)
        if isinstance(node, ast.Attribute)
    }
    imported = set()
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            imported.update(alias.name.split(".")[0] for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module:
            imported.add(node.module.split(".")[0])
            imported.update(alias.name for alias in node.names)
    return bool(_PROCESS_MARKERS & (names | attrs | imported))


def _unpicklable_attrs(tree: ast.AST) -> set[str]:
    """``self.<attr>`` names assigned from unpicklable constructors."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)):
            continue
        if call_name(node.value) not in UNPICKLABLE_CONSTRUCTORS:
            continue
        for target in node.targets:
            attr = self_attr(target)
            if attr is not None:
                out.add(attr)
    return out


class PickleBoundaryRule(Rule):
    name = "pickle-boundary"
    description = (
        "process-pool payloads must not capture locks, file handles, "
        "lambdas, generators, or whole objects"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for source in project.files:
            if not _file_is_process_scoped(source):
                continue
            tainted = _unpicklable_attrs(source.tree)
            for node in ast.walk(source.tree):
                if isinstance(node, ast.Call) and \
                        call_name(node) == "submit":
                    yield from self._check_payload(
                        source, node.args, tainted, "submit() payload"
                    )
                elif (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Tuple)
                    and len(node.targets) == 1
                    and self._is_payload_target(node.targets[0])
                ):
                    yield from self._check_payload(
                        source, node.value.elts, tainted, "worker payload"
                    )

    @staticmethod
    def _is_payload_target(target: ast.AST) -> bool:
        if isinstance(target, ast.Name):
            return "payload" in target.id
        attr = self_attr(target)
        return attr is not None and "payload" in attr

    def _check_payload(self, source: SourceFile, values: list[ast.expr],
                       tainted: set[str], where: str) -> Iterable[Finding]:
        for value in values:
            for sub in ast.walk(value):
                if isinstance(sub, ast.Lambda):
                    yield self.finding(
                        source, sub,
                        f"{where} contains a lambda; lambdas cannot "
                        "cross the pickle boundary into a process "
                        "worker",
                    )
                elif isinstance(sub, ast.GeneratorExp):
                    yield self.finding(
                        source, sub,
                        f"{where} contains a generator expression; "
                        "generators cannot be pickled — materialise a "
                        "list first",
                    )
                elif isinstance(sub, ast.Name) and sub.id == "self":
                    attr = None
                    # `self` alone is the problem; `self.x` is handled
                    # by the attribute branch below via its parent.
                    if not self._name_is_attribute_base(value, sub):
                        yield self.finding(
                            source, sub,
                            f"{where} ships `self` across the pickle "
                            "boundary; pass plain fields instead of "
                            "the whole object",
                        )
                    del attr
                elif isinstance(sub, ast.Attribute):
                    attr = self_attr(sub)
                    if attr is not None and attr in tainted:
                        yield self.finding(
                            source, sub,
                            f"{where} ships `self.{attr}`, which is "
                            "assigned from an unpicklable constructor "
                            "(lock/file/executor)",
                        )

    @staticmethod
    def _name_is_attribute_base(root: ast.expr, name: ast.Name) -> bool:
        """True when ``name`` occurs as the ``x`` of some ``x.attr``."""
        for node in ast.walk(root):
            if isinstance(node, ast.Attribute) and node.value is name:
                return True
        return False
