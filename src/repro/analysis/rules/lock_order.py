"""lock-order: no cycles among nested lock acquisitions.

Two threads that take the same pair of locks in opposite orders can
deadlock; neither side is wrong in isolation, so the property is global
and needs a *graph*.  This rule builds that graph from two sources:

* **the lock-set layer** (:mod:`repro.analysis.lockset`) — the static
  acquisition graph.  Holding lock A while acquiring lock B is the
  edge ``A -> B``, where "holding" is either lexical (``with self._a:``
  around ``with self._b:``) or *interprocedural*: the may-entry lock
  set propagated through resolved call sites, so an acquisition two
  calls deep in another class still produces the edge.  Locks are
  named canonically ``"ClassName.attr"`` by the
  :class:`~repro.analysis.lockset.LockRegistry` — a lock created in
  one class and passed into another's ``__init__`` resolves to its
  creator's name instead of silently dropping the edge.  Re-acquiring
  a held *re-entrant* lock is legal and produces no edge; re-acquiring
  a held plain lock is a self-deadlock and produces a self-edge
  (a one-node cycle).
* **the witness file** — ``lock_order.witness.json`` at the project
  root, the blessed cross-module edges observed by the runtime
  sanitizer.  Static analysis under-approximates (⊥ calls, implicit
  dispatch), so runtime edges still merge into the cycle check;
  ``witness_check --static-diff`` separately audits that every
  *blessed* edge either has a static path or a written justification.

A cycle through the merged graph that touches at least one static edge
is reported on that edge's acquisition line, with the caller chain
explaining how the outer lock is held when the edge is not lexical.
Cycles made purely of witness edges are the runtime sanitizer's to
report — it has the stacks.
"""

from __future__ import annotations

from typing import Iterable

from ..engine import Project
from ..findings import Finding
from ..lockset import short_path
from ..runtime.locks import find_cycles
from ..runtime.witness import find_witness_file, load_witness_edges
from .base import Rule


class LockOrderRule(Rule):
    name = "lock-order"
    description = (
        "static lock acquisitions (lexical and through callees) must "
        "not form a cycle with the edges in lock_order.witness.json "
        "(potential deadlock)"
    )
    needs_index = True
    needs_lockset = True

    def check(self, project: Project) -> Iterable[Finding]:
        lockset = project.lockset()

        witness_edges: list[tuple[str, str]] = []
        witness_path = find_witness_file(project.root)
        if witness_path is not None:
            witness_edges = load_witness_edges(witness_path)

        merged = lockset.edge_pairs()
        merged.update(witness_edges)
        cycle_nodes = [set(cycle) for cycle in find_cycles(merged)]
        if not cycle_nodes:
            return

        for edge in lockset.edges:
            for nodes in cycle_nodes:
                if edge.outer in nodes and edge.inner in nodes:
                    info = lockset.index.functions.get(edge.function)
                    if info is None:
                        break
                    path = " -> ".join(sorted(nodes))
                    message = (
                        f"acquiring '{edge.inner}' while holding "
                        f"'{edge.outer}' in '{info.name}' closes a "
                        f"lock-order cycle ({path}); a thread taking "
                        f"these locks in the opposite order can "
                        f"deadlock"
                    )
                    if len(edge.chain) > 1:
                        message += (
                            f" — '{edge.outer}' is held via "
                            f"{short_path(edge.chain)}"
                        )
                    yield self.finding(info.source, edge.node, message)
                    break
