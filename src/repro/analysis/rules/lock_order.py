"""lock-order: no cycles among nested lock acquisitions.

Two threads that take the same pair of locks in opposite orders can
deadlock; neither side is wrong in isolation, so the property is global
and needs a *graph*.  This rule builds that graph from two sources:

* **the AST** — inside one class, ``with self._a:`` nested inside
  ``with self._b:`` is the edge ``Class._b -> Class._a``.  Only
  attributes initialised as locks (``new_lock(...)``, ``new_rlock``,
  ``threading.Lock()``/``RLock()``) count; other context managers are
  ignored.  Edges are named with the same ``"ClassName.attr"`` contract
  names the :mod:`repro.common.locks` factory uses.
* **the witness file** — ``lock_order.witness.json`` at the project
  root, the blessed cross-module edges observed by the runtime
  sanitizer (the AST cannot see an acquisition that happens two calls
  deep in another class).

A cycle through the merged graph that touches at least one AST edge is
reported on that edge's source line.  Cycles made purely of witness
edges are the runtime sanitizer's to report — it has the stacks.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Project
from ..findings import Finding
from ..runtime.locks import find_cycles
from ..runtime.witness import find_witness_file, load_witness_edges
from ..source import SourceFile
from .base import Rule, call_name, iter_functions, self_attr, walk_with_stack

#: Call names whose result is a lock for the purposes of this rule.
_LOCK_FACTORIES = {"new_lock", "new_rlock", "Lock", "RLock"}


def _lock_attrs(class_node: ast.ClassDef) -> set[str]:
    """Attributes of a class initialised from a lock factory."""
    attrs: set[str] = set()
    for node in ast.walk(class_node):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if not (isinstance(value, ast.Call)
                and call_name(value) in _LOCK_FACTORIES):
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            attr = self_attr(target)
            if attr is not None:
                attrs.add(attr)
    return attrs


class _SourceEdge:
    """One AST-observed edge with where to report it."""

    __slots__ = ("outer", "inner", "source", "node", "function")

    def __init__(self, outer: str, inner: str, source: SourceFile,
                 node: ast.AST, function: str) -> None:
        self.outer = outer
        self.inner = inner
        self.source = source
        self.node = node
        self.function = function


class LockOrderRule(Rule):
    name = "lock-order"
    description = (
        "nested lock acquisitions must not form a cycle with the edges "
        "in lock_order.witness.json (potential deadlock)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        source_edges: list[_SourceEdge] = []
        for source in project.files:
            source_edges.extend(self._file_edges(source))

        witness_edges: list[tuple[str, str]] = []
        witness_path = find_witness_file(project.root)
        if witness_path is not None:
            witness_edges = load_witness_edges(witness_path)

        merged = {(e.outer, e.inner) for e in source_edges}
        merged.update(witness_edges)
        cycle_nodes = [set(cycle) for cycle in find_cycles(merged)]
        if not cycle_nodes:
            return

        for edge in source_edges:
            for nodes in cycle_nodes:
                if edge.outer in nodes and edge.inner in nodes:
                    path = " -> ".join(sorted(nodes))
                    yield self.finding(
                        edge.source, edge.node,
                        f"acquiring '{edge.inner}' while holding "
                        f"'{edge.outer}' in '{edge.function}' closes a "
                        f"lock-order cycle ({path}); a thread taking "
                        f"these locks in the opposite order can deadlock",
                    )
                    break

    def _file_edges(self, source: SourceFile) -> Iterable[_SourceEdge]:
        lock_attrs_by_class = {
            node: _lock_attrs(node)
            for node in ast.walk(source.tree)
            if isinstance(node, ast.ClassDef)
        }
        for owner, function in iter_functions(source.tree):
            if owner is None:
                continue
            locks = lock_attrs_by_class.get(owner) or set()
            if not locks:
                continue
            for node, stack in walk_with_stack(function):
                if not isinstance(node, ast.With):
                    continue
                inners = [
                    attr for item in node.items
                    for attr in [self_attr(item.context_expr)]
                    if attr is not None and attr in locks
                ]
                if not inners:
                    continue
                outers = {
                    attr
                    for ancestor in stack
                    if isinstance(ancestor, ast.With)
                    for item in ancestor.items
                    for attr in [self_attr(item.context_expr)]
                    if attr is not None and attr in locks
                }
                for inner in inners:
                    for outer in outers:
                        if outer == inner:
                            continue
                        yield _SourceEdge(
                            outer=f"{owner.name}.{outer}",
                            inner=f"{owner.name}.{inner}",
                            source=source,
                            node=node,
                            function=function.name,
                        )
