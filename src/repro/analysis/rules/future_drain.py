"""future-drain: every submitted future must be awaited or drainable.

PR 3's bugfix sweep found scans that failed mid-flight while futures
from ``pool.submit(...)`` were still outstanding — the next scan then
reused a pool with stale work in it.  The repair was structural: every
future is appended to a tracked collection (``inflight``) and the
exception path drains/cancels that collection before re-raising.  This
rule enforces the structure:

* a ``submit()`` whose result is discarded (a bare expression
  statement) is a finding — nobody can ever await or cancel it;
* a ``submit()`` result assigned to a local that is never used again
  is a finding for the same reason;
* ``submit()`` results collected into a list/deque (via ``append`` or
  a comprehension) require the enclosing function to have an
  ``except`` or ``finally`` block that references the collection and
  calls one of the drain verbs (``drain``, ``cancel``, ``result``,
  ``exception``, ``popleft``, ``shutdown``) — i.e. the exception path
  must be able to reach the futures;
* returning the future transfers responsibility to the caller and is
  always fine.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Project
from ..findings import Finding
from ..source import SourceFile
from .base import Rule, call_name, iter_functions, names_in, walk_with_stack

#: Methods whose presence on the exception path counts as draining.
DRAIN_VERBS = {"drain", "cancel", "result", "exception", "popleft",
               "shutdown", "pop", "join"}


def _is_submit(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and call_name(node) == "submit"


class FutureDrainRule(Rule):
    name = "future-drain"
    description = (
        "submit() results must be returned, awaited, or collected into "
        "a structure the exception path drains/cancels"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for source in project.files:
            for _, function in iter_functions(source.tree):
                yield from self._check_function(source, function)

    def _check_function(self, source: SourceFile,
                        function: ast.FunctionDef) -> Iterable[Finding]:
        collections: set[str] = set()
        assigned: dict[str, ast.AST] = {}
        saw_submit = False

        for node, stack in walk_with_stack(function):
            if not _is_submit(node):
                continue
            saw_submit = True
            parent = stack[-1] if stack else function
            if isinstance(parent, ast.Expr):
                yield self.finding(
                    source, node,
                    "result of submit() is discarded; the future can "
                    "never be awaited or cancelled",
                )
            elif isinstance(parent, ast.Return):
                continue  # responsibility transferred to the caller
            elif (isinstance(parent, ast.Call)
                  and call_name(parent) == "append"
                  and isinstance(parent.func, ast.Attribute)
                  and isinstance(parent.func.value, ast.Name)):
                collections.add(parent.func.value.id)
            elif any(isinstance(anc, (ast.ListComp, ast.SetComp,
                                      ast.GeneratorExp)) for anc in stack):
                comp_targets = self._comprehension_targets(function, stack)
                collections.update(comp_targets)
            elif isinstance(parent, ast.Assign):
                for target in parent.targets:
                    if isinstance(target, ast.Name):
                        assigned[target.id] = node

        if not saw_submit:
            return

        # Locals holding a single future must be used again.
        for name, node in assigned.items():
            uses = sum(
                1 for n in ast.walk(function)
                if isinstance(n, ast.Name) and n.id == name
            )
            if uses <= 1:  # the assignment itself
                yield self.finding(
                    source, node,
                    f"future assigned to '{name}' is never awaited, "
                    "cancelled, or tracked",
                )

        # Collections of futures need a reachable drain on the
        # exception path.
        for name in sorted(collections):
            if not self._drained_on_exception_path(function, name):
                yield self.finding(
                    source, function,
                    f"futures collected in '{name}' are not drained or "
                    "cancelled on any except/finally path of "
                    f"'{function.name}'",
                )

    @staticmethod
    def _comprehension_targets(function: ast.FunctionDef,
                               stack: list[ast.AST]) -> set[str]:
        """Names a submit-bearing comprehension is assigned to."""
        out: set[str] = set()
        for index, node in enumerate(stack):
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) for t in node.targets
            ):
                out.update(
                    t.id for t in node.targets if isinstance(t, ast.Name)
                )
        return out

    @staticmethod
    def _drained_on_exception_path(function: ast.FunctionDef,
                                   collection: str) -> bool:
        for node in ast.walk(function):
            if not isinstance(node, ast.Try):
                continue
            regions: list[list[ast.stmt]] = [
                handler.body for handler in node.handlers
            ]
            if node.finalbody:
                regions.append(node.finalbody)
            for region in regions:
                for stmt in region:
                    mentions = any(
                        collection in names_in(sub)
                        for sub in ast.walk(stmt)
                    )
                    verbs = any(
                        isinstance(sub, ast.Call)
                        and call_name(sub) in DRAIN_VERBS
                        for sub in ast.walk(stmt)
                    )
                    if mentions and verbs:
                        return True
        return False
