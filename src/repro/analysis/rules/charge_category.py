"""Rule: every charge category is a literal from the one registry.

``CostMeter.charge`` keys its buckets by plain string.  A typo'd
category (``"severio"``) does not crash anything at the call site —
it silently opens a new bucket, the intended bucket under-reports, and
every cost-parity claim downstream is quietly wrong.  The registry of
valid categories already exists: the ``CATEGORIES`` tuple next to
``CostModel``.  This rule closes the loop in both directions:

* every ``meter.charge(...)`` category must be a **string literal**
  (a computed category cannot be audited statically), and that literal
  must appear in ``CATEGORIES``;
* every ``CATEGORIES`` entry must be charged somewhere, and every
  ``CostModel`` field must be read inside some charging function —
  a priced-but-never-charged field means a paper cost the
  reproduction silently dropped.

The registry is discovered *in the scanned project* (the ``CostModel``
class definition and the module-level ``CATEGORIES`` tuple), never
imported, so fixtures can carry their own miniature cost model.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Project
from ..findings import Finding
from ..project_index import ProjectIndex
from ..source import SourceFile
from .base import Rule
from .meter_common import charge_calls, is_charge_call, literal_category


class ChargeCategoryRule(Rule):

    name = "charge-category"
    description = (
        "meter.charge categories must be literals from the CATEGORIES "
        "registry; registry entries and CostModel fields must all be "
        "exercised by some charge site"
    )
    needs_index = True

    def check(self, project: Project) -> Iterable[Finding]:
        index = project.index()
        findings: list[Finding] = []

        # -- the registry, discovered from source --------------------
        valid: set[str] = set()
        category_decls: list[tuple[SourceFile, ast.Constant]] = []
        model_fields: list[tuple[SourceFile, ast.AnnAssign, str]] = []
        for source in project.files:
            for stmt in source.tree.body:
                targets: list[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets = list(stmt.targets)
                elif isinstance(stmt, ast.AnnAssign) and \
                        stmt.value is not None:
                    targets = [stmt.target]
                value = getattr(stmt, "value", None)
                if not any(
                    isinstance(t, ast.Name) and t.id == "CATEGORIES"
                    for t in targets
                ):
                    continue
                if isinstance(value, (ast.Tuple, ast.List)):
                    for elt in value.elts:
                        if isinstance(elt, ast.Constant) and \
                                isinstance(elt.value, str):
                            valid.add(elt.value)
                            category_decls.append((source, elt))
            for stmt in source.tree.body:
                if isinstance(stmt, ast.ClassDef) and \
                        stmt.name == "CostModel":
                    for item in stmt.body:
                        if isinstance(item, ast.AnnAssign) and \
                                isinstance(item.target, ast.Name):
                            model_fields.append(
                                (source, item, item.target.id)
                            )

        # -- every charge site, project-wide -------------------------
        charged: set[str] = set()
        for source in project.files:
            for node in ast.walk(source.tree):
                if not (isinstance(node, ast.Call)
                        and is_charge_call(node)):
                    continue
                category = literal_category(node)
                if category is None:
                    findings.append(self.finding(
                        source, node,
                        "charge category must be a string literal so "
                        "the registry can audit it",
                    ))
                    continue
                charged.add(category)
                if valid and category not in valid:
                    findings.append(self.finding(
                        source, node,
                        f"unknown charge category '{category}': not in "
                        "the CATEGORIES registry (a typo here silently "
                        "opens a new bucket)",
                    ))

        # -- registry entries and model fields nobody exercises ------
        for source, elt in category_decls:
            if elt.value not in charged:
                findings.append(self.finding(
                    source, elt,
                    f"category '{elt.value}' is declared in CATEGORIES "
                    "but no code ever charges it",
                ))
        if model_fields and charged:
            used_fields = self._fields_read_by_chargers(index)
            for source, item, field_name in model_fields:
                if field_name not in used_fields:
                    findings.append(self.finding(
                        source, item,
                        f"CostModel field '{field_name}' is never read "
                        "inside any charging function — a priced cost "
                        "no charge site accounts for",
                    ))
        return findings

    @staticmethod
    def _fields_read_by_chargers(index: ProjectIndex) -> set[str]:
        """Attribute names read inside functions that charge.

        Fields often flow through locals (``cost = model.index_probe *
        n; meter.charge("index", cost)``), so the check is scoped to
        the charging function, not the charge call's argument list.
        """
        used: set[str] = set()
        for info in index.functions.values():
            if not any(True for _ in charge_calls(info.node)):
                continue
            for node in ast.walk(info.node):
                if isinstance(node, ast.Attribute):
                    used.add(node.attr)
        return used


__all__ = ["ChargeCategoryRule"]
