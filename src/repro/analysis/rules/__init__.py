"""Rule registry for the repro static-analysis suite."""

from __future__ import annotations

from .atomicity import AtomicityRule
from .base import Rule
from .charge_category import ChargeCategoryRule
from .future_drain import FutureDrainRule
from .guarded_by import GuardedByRule
from .knob_consistency import KnobConsistencyRule
from .lock_order import LockOrderRule
from .meter_parity import MeterParityRule
from .mutation_completeness import MutationCompletenessRule
from .pickle_boundary import PickleBoundaryRule
from .resource_lifecycle import ResourceLifecycleRule
from .unmetered_row_access import UnmeteredRowAccessRule

#: Every shipped rule, in reporting order.  The first three are the
#: concurrency family, built on the lock-set layer; the last four are
#: the meter-integrity family, built on the interprocedural
#: ProjectIndex.
ALL_RULES: list[type[Rule]] = [
    GuardedByRule,
    LockOrderRule,
    AtomicityRule,
    FutureDrainRule,
    ResourceLifecycleRule,
    PickleBoundaryRule,
    KnobConsistencyRule,
    ChargeCategoryRule,
    UnmeteredRowAccessRule,
    MutationCompletenessRule,
    MeterParityRule,
]


def default_rules() -> list[Rule]:
    """Fresh instances of every shipped rule."""
    return [cls() for cls in ALL_RULES]


def rules_by_name(names: list[str]) -> list[Rule]:
    """Instances of the named rules, in registry order.

    Raises :class:`KeyError` naming the first unknown rule, so the
    CLI can turn it into a usage error.
    """
    catalog = {cls.name: cls for cls in ALL_RULES}
    for name in names:
        if name not in catalog:
            raise KeyError(name)
    return [cls() for cls in ALL_RULES if cls.name in set(names)]


__all__ = [
    "ALL_RULES",
    "AtomicityRule",
    "ChargeCategoryRule",
    "FutureDrainRule",
    "GuardedByRule",
    "KnobConsistencyRule",
    "LockOrderRule",
    "MeterParityRule",
    "MutationCompletenessRule",
    "PickleBoundaryRule",
    "ResourceLifecycleRule",
    "Rule",
    "UnmeteredRowAccessRule",
    "default_rules",
    "rules_by_name",
]
