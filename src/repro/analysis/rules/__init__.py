"""Rule registry for the repro static-analysis suite."""

from __future__ import annotations

from .base import Rule
from .future_drain import FutureDrainRule
from .guarded_by import GuardedByRule
from .knob_consistency import KnobConsistencyRule
from .lock_order import LockOrderRule
from .pickle_boundary import PickleBoundaryRule
from .resource_lifecycle import ResourceLifecycleRule

#: Every shipped rule, in reporting order.
ALL_RULES: list[type[Rule]] = [
    GuardedByRule,
    LockOrderRule,
    FutureDrainRule,
    ResourceLifecycleRule,
    PickleBoundaryRule,
    KnobConsistencyRule,
]


def default_rules() -> list[Rule]:
    """Fresh instances of every shipped rule."""
    return [cls() for cls in ALL_RULES]


__all__ = [
    "ALL_RULES",
    "FutureDrainRule",
    "GuardedByRule",
    "KnobConsistencyRule",
    "LockOrderRule",
    "PickleBoundaryRule",
    "ResourceLifecycleRule",
    "Rule",
    "default_rules",
]
