"""Shared plumbing for analysis rules.

Every rule exposes ``name``, ``description`` and
``check(project) -> Iterable[Finding]``; per-file rules loop over
``project.files`` themselves.  The helpers here cover the AST idioms
several rules share: resolving ``self.attr`` references, walking
functions with their enclosing class, and finding the lock held around
a statement.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..engine import Project
from ..findings import Finding
from ..source import SourceFile


class Rule:
    """Base class: subclasses set ``name``/``description``.

    Rules that query the interprocedural
    :class:`~repro.analysis.project_index.ProjectIndex` set
    ``needs_index = True`` so the engine builds (and times) the index
    once before any of them runs, via :meth:`Project.index`.  Rules
    that additionally query the lock-set dataflow
    (:class:`~repro.analysis.lockset.LockSetAnalysis`) set
    ``needs_lockset = True``; the engine pre-builds it under the
    ``lock-set`` timing entry via :meth:`Project.lockset`.
    """

    name = "rule"
    description = ""
    needs_index = False
    needs_lockset = False

    def check(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, source: SourceFile, node: ast.AST,
                message: str) -> Finding:
        return Finding(
            path=source.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule=self.name,
            message=message,
        )


def self_attr(node: ast.AST) -> str | None:
    """``attr`` when ``node`` is ``self.attr``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def call_name(node: ast.Call) -> str | None:
    """The terminal name of a call: ``f(...)`` -> f, ``x.m(...)`` -> m."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def dotted_call_name(node: ast.Call) -> str | None:
    """``pkg.mod.f(...)`` -> ``"pkg.mod.f"`` (None when not name-based)."""
    parts: list[str] = []
    probe: ast.AST = node.func
    while isinstance(probe, ast.Attribute):
        parts.append(probe.attr)
        probe = probe.value
    if isinstance(probe, ast.Name):
        parts.append(probe.id)
        return ".".join(reversed(parts))
    return None


def iter_functions(tree: ast.AST) -> \
        Iterator[tuple[ast.ClassDef | None, ast.FunctionDef]]:
    """Yield ``(enclosing_class_or_None, function)`` pairs."""

    def visit(node: ast.AST, owner: ast.ClassDef | None) -> \
            Iterator[tuple[ast.ClassDef | None, ast.FunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(child, ast.FunctionDef):
                    yield owner, child
                yield from visit(child, owner)
            else:
                yield from visit(child, owner)

    yield from visit(tree, None)


def with_lock_names(stack: list[ast.AST]) -> set[str]:
    """Locks held at a point, given the ancestor ``With`` statements.

    A lock is a ``with self.<name>:`` (or ``with self.<name>`` among
    several items) anywhere in the ancestor stack.
    """
    held: set[str] = set()
    for node in stack:
        if isinstance(node, ast.With):
            for item in node.items:
                name = self_attr(item.context_expr)
                if name is not None:
                    held.add(name)
    return held


def walk_with_stack(node: ast.AST) -> Iterator[tuple[ast.AST, list[ast.AST]]]:
    """Yield ``(descendant, ancestors)`` for every node under ``node``.

    ``ancestors`` excludes ``node`` itself and is ordered outermost
    first.  Nested function/class definitions are *not* descended into
    — callers iterate functions one at a time via
    :func:`iter_functions` and want each body in isolation.
    """

    def visit(current: ast.AST,
              stack: list[ast.AST]) -> Iterator[tuple[ast.AST, list[ast.AST]]]:
        for child in ast.iter_child_nodes(current):
            yield child, stack
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            yield from visit(child, stack + [child])

    yield from visit(node, [])


def names_in(node: ast.AST) -> set[str]:
    """Every bare ``Name`` referenced anywhere under ``node``."""
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}
