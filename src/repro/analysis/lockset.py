"""The lock-set layer: which locks are provably held, whole-program.

The per-file concurrency rules from the first analysis PR could only
reason lexically: a write to a ``#: guarded by self._lock`` attribute
was clean iff it sat *textually* inside ``with self._lock:``, and a
lock-order edge existed only when two ``with`` blocks nested inside
one function of one class.  That forces the common helper pattern —
``with self._lock: self._apply(...)`` where ``_apply`` does the write
— into either a suppression or a false pass, and leaves every
cross-class acquisition edge to the runtime witness file.

This module computes, RacerD-style, a *lock set* for every function in
the :class:`~repro.analysis.project_index.ProjectIndex` call graph:

* **must-entry** — the set of locks provably held on *every* path into
  the function.  Computed as a greatest fixpoint: each resolved call
  site contributes ``must_entry(caller) ∪ lexical(site)`` and the
  contributions meet by intersection.  Thread roots and functions with
  no known callers contribute the empty set (they can be entered with
  no project lock held).
* **⊥ (unknown)** — an explicit bottom element.  Some entry paths are
  invisible: a dynamic-dispatch fallback guess, a function escaping
  as a value (callbacks), decorator-wrapped defs, implicit dunder
  dispatch, and call sites inside nested ``def``/``lambda`` (a
  closure runs later, under unknown locks).  Those paths are *taint*:
  they never contribute an empty lock set — so a tainted function
  whose every *known* caller holds the lock stays clean — and a
  function **all** of whose entry paths are unknown is ⊥ outright.
  Rules treat ⊥ as "unknown" and stay silent: the analysis degrades
  to *unknown*, never to *unlocked*, and every finding carries a
  concrete witnessing caller chain.  The runtime sanitizer covers the
  residue.
* **may-entry** — the union over the same contributions, used to
  derive the static lock-order graph: holding lock A (on *some* path)
  while acquiring lock B is a potential A→B edge even when the two
  acquisitions live two calls and two classes apart.
* **lock identity** — locks are named canonically ``"ClassName.attr"``
  (the string literal passed to ``new_lock``/``new_rlock`` when there
  is one), and a lock created in one class and passed into another's
  ``__init__`` resolves to the *creator's* canonical name, so aliased
  acquisitions produce one graph node instead of silently dropping
  the edge.
* **RLock re-entrancy** — re-acquiring a held re-entrant lock is
  neither an edge nor a self-deadlock; re-acquiring a held *plain*
  lock is a guaranteed deadlock and surfaces as a self-edge.
* **thread roots** — discovered structurally: ``threading.Thread(
  target=...)`` sites, ``executor.submit(f, ...)`` first arguments,
  and the public entry points of ``Middleware`` classes.  The
  atomicity rule uses them to ask whether a racy sequence is actually
  reachable from two threads.

The analysis is built once per run (``Project.lockset()``, timed as
``lock-set`` next to ``project-index``) and shared by the whole
concurrency family.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterator, List, \
    Optional, Sequence, Set, Tuple

from .project_index import CallSite, ClassInfo, FunctionInfo, ProjectIndex

if TYPE_CHECKING:
    from .engine import Project

#: Calls that create a lock the analysis can name.  ``new_lock`` /
#: ``new_rlock`` are the project's sanitizer-aware factories; bare
#: ``threading.Lock()`` / ``RLock()`` appear in fixtures and tests.
LOCK_FACTORIES = frozenset({"new_lock", "Lock"})
RLOCK_FACTORIES = frozenset({"new_rlock", "RLock"})

#: Upper bound on constructor-parameter alias resolution rounds: a
#: lock can thread A → B → C through two ``__init__`` hops.
ALIAS_ROUNDS = 4

#: must-entry lattice: a concrete frozenset of canonical lock names,
#: or ``None`` for ⊥ (no known entry path — unknown, not unlocked).
MustState = Optional[FrozenSet[str]]


def short_path(path: Sequence[str]) -> str:
    """Render a qualname chain compactly: keep the last two segments."""
    return " -> ".join(".".join(q.split(".")[-2:]) for q in path)


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _terminal_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


@dataclass(frozen=True)
class LockInfo:
    """One named lock: canonical identity plus re-entrancy."""

    #: ``"ClassName.attr"`` — the factory's string literal when given,
    #: else derived from the owning class and attribute.
    canonical: str
    reentrant: bool


@dataclass(frozen=True)
class ThreadRoot:
    """A function some thread enters from outside the call graph."""

    qualname: str
    #: ``thread-target`` | ``executor-submit`` | ``public-entry``.
    kind: str
    #: Where the root was discovered (qualname of the spawning
    #: function, or the owning class for public entry points).
    via: str
    #: True when many threads may run this root concurrently (executor
    #: submissions, ``Thread(...)`` constructed inside a loop).
    multi: bool


@dataclass
class Acquisition:
    """One ``with self.<lock>:`` statement inside a function."""

    function: str
    node: ast.With
    lock: LockInfo
    #: Canonical names lexically held *around* this acquisition.
    held_lexical: FrozenSet[str]


@dataclass
class StaticEdge:
    """Holding ``outer``, the program acquires ``inner``."""

    outer: str
    inner: str
    #: Function containing the inner acquisition.
    function: str
    #: The ``with`` statement performing the inner acquisition.
    node: ast.With
    #: Caller chain (outermost first, ending at ``function``) through
    #: which ``outer`` is held; length 1 means purely lexical.
    chain: Tuple[str, ...]


class LockRegistry:
    """Canonical names for every lock attribute in the project."""

    def __init__(self) -> None:
        #: (class qualname, attr) -> LockInfo.
        self._by_attr: Dict[Tuple[str, str], LockInfo] = {}

    @classmethod
    def build(cls, index: ProjectIndex) -> "LockRegistry":
        registry = cls()
        registry._collect_factories(index)
        registry._thread_constructor_params(index)
        return registry

    # -- construction --------------------------------------------------------

    def _collect_factories(self, index: ProjectIndex) -> None:
        """Pass 1: ``self.attr = new_lock("Cls.attr")`` in any method."""
        for cls_info in index.classes.values():
            for method_qualname in cls_info.methods.values():
                method = index.functions.get(method_qualname)
                if method is None:
                    continue
                for node in ast.walk(method.node):
                    attr, value = _attr_assignment(node)
                    if attr is None or not isinstance(value, ast.Call):
                        continue
                    info = _factory_lock(value, cls_info.name, attr)
                    if info is not None:
                        self._by_attr.setdefault(
                            (cls_info.qualname, attr), info
                        )

    def _thread_constructor_params(self, index: ProjectIndex) -> None:
        """Pass 2: ``self.attr = <ctor param>`` resolved at call sites.

        Iterated so a lock can thread through several ``__init__``
        hops; a parameter whose call sites disagree about which lock
        they pass stays unregistered (conservative).
        """
        for _ in range(ALIAS_ROUNDS):
            if not self._thread_once(index):
                break

    def _thread_once(self, index: ProjectIndex) -> bool:
        changed = False
        for cls_info in index.classes.values():
            ctor_qualname = cls_info.methods.get("__init__")
            ctor = index.functions.get(ctor_qualname or "")
            if ctor is None:
                continue
            aliases = _param_aliases(ctor)
            if not aliases:
                continue
            params = _param_names(ctor)
            for attr, param in aliases.items():
                key = (cls_info.qualname, attr)
                if key in self._by_attr:
                    continue
                info = self._lock_passed_for(
                    index, ctor.qualname, params, param
                )
                if info is not None:
                    self._by_attr[key] = info
                    changed = True
        return changed

    def _lock_passed_for(self, index: ProjectIndex, ctor: str,
                         params: List[str],
                         param: str) -> Optional[LockInfo]:
        """The unique LockInfo every ctor call site passes for a param."""
        found: Set[LockInfo] = set()
        for caller_qualname, sites in index.calls.items():
            caller = index.functions.get(caller_qualname)
            if caller is None:
                continue
            for site in sites:
                if ctor not in site.targets or site.via_fallback:
                    continue
                arg = _argument_for(site.node, params, param)
                if arg is None:
                    continue
                info = self._lock_of_expr(index, caller, arg)
                if info is None:
                    return None  # a site we cannot name: give up.
                found.add(info)
        if len(found) == 1:
            return next(iter(found))
        return None

    def _lock_of_expr(self, index: ProjectIndex, caller: FunctionInfo,
                      expr: ast.AST) -> Optional[LockInfo]:
        """Resolve an argument expression to a known lock, best effort."""
        attr = _self_attr(expr)
        if attr is not None:
            owner = _owner_class(index, caller)
            if owner is not None:
                return self.lookup(index, owner.qualname, attr)
            return None
        if isinstance(expr, ast.Call):
            direct = _factory_lock(expr, "", "")
            if direct is not None and direct.canonical:
                return direct
            # A project factory function whose body returns a named
            # factory call (``def make(): return new_lock("A.b")``).
            for site in index.calls.get(caller.qualname, []):
                if site.node is not expr:
                    continue
                for target in site.targets:
                    info = _returned_lock(index, target)
                    if info is not None:
                        return info
            return None
        if isinstance(expr, ast.Name):
            # A local assigned from a factory call in the same body.
            for node in ast.walk(caller.node):
                if not isinstance(node, ast.Assign):
                    continue
                if len(node.targets) != 1 or not isinstance(
                    node.targets[0], ast.Name
                ) or node.targets[0].id != expr.id:
                    continue
                if isinstance(node.value, ast.Call):
                    info = _factory_lock(node.value, "", "")
                    if info is not None and info.canonical:
                        return info
                local_attr = _self_attr(node.value)
                if local_attr is not None:
                    owner = _owner_class(index, caller)
                    if owner is not None:
                        return self.lookup(
                            index, owner.qualname, local_attr
                        )
            return None
        return None

    # -- queries -------------------------------------------------------------

    def lookup(self, index: ProjectIndex, class_qualname: str,
               attr: str) -> Optional[LockInfo]:
        """The lock behind ``self.<attr>`` on a class, MRO-aware."""
        for owner in _project_mro(index, class_qualname):
            info = self._by_attr.get((owner, attr))
            if info is not None:
                return info
        return None

    def canonical_guard(self, index: ProjectIndex, class_qualname: str,
                        attr: str) -> str:
        """Canonical name for a guard lock, with a naming fallback."""
        info = self.lookup(index, class_qualname, attr)
        if info is not None:
            return info.canonical
        simple = class_qualname.rsplit(".", 1)[-1]
        return f"{simple}.{attr}"

    def known_locks(self) -> Dict[Tuple[str, str], LockInfo]:
        return dict(self._by_attr)


def _attr_assignment(
    node: ast.AST,
) -> Tuple[Optional[str], Optional[ast.AST]]:
    """``(attr, value)`` for ``self.attr = value`` forms, else Nones."""
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        attr = _self_attr(node.targets[0])
        if attr is not None:
            return attr, node.value
    if isinstance(node, ast.AnnAssign) and node.value is not None:
        attr = _self_attr(node.target)
        if attr is not None:
            return attr, node.value
    return None, None


def _factory_lock(call: ast.Call, class_name: str,
                  attr: str) -> Optional[LockInfo]:
    """LockInfo for a lock-factory call, or None for other calls.

    The canonical name prefers the factory's first string-literal
    argument (the sanitizer's naming convention); without one it is
    ``"ClassName.attr"`` — empty when neither is known, which callers
    treat as unusable.
    """
    name = _terminal_name(call)
    if name is None:
        return None
    if name in LOCK_FACTORIES:
        reentrant = False
    elif name in RLOCK_FACTORIES:
        reentrant = True
    else:
        return None
    canonical = ""
    if call.args and isinstance(call.args[0], ast.Constant) and \
            isinstance(call.args[0].value, str):
        canonical = call.args[0].value
    elif class_name and attr:
        canonical = f"{class_name}.{attr}"
    if not canonical:
        return None
    return LockInfo(canonical=canonical, reentrant=reentrant)


def _returned_lock(index: ProjectIndex,
                   qualname: str) -> Optional[LockInfo]:
    """The named lock a factory *function* returns, if any."""
    info = index.functions.get(qualname)
    if info is None:
        return None
    for node in ast.walk(info.node):
        if isinstance(node, ast.Return) and isinstance(
            node.value, ast.Call
        ):
            found = _factory_lock(node.value, "", "")
            if found is not None:
                return found
    return None


def _param_names(ctor: FunctionInfo) -> List[str]:
    args = ctor.node.args
    return [a.arg for a in list(args.posonlyargs) + list(args.args)]


def _param_aliases(ctor: FunctionInfo) -> Dict[str, str]:
    """``self.attr = <param>`` assignments in an ``__init__`` body."""
    params = set(_param_names(ctor)) - {"self"}
    out: Dict[str, str] = {}
    for node in ast.walk(ctor.node):
        attr, value = _attr_assignment(node)
        if attr is None:
            continue
        if isinstance(value, ast.Name) and value.id in params:
            out.setdefault(attr, value.id)
    return out


def _argument_for(call: ast.Call, params: List[str],
                  param: str) -> Optional[ast.AST]:
    """The expression a call passes for a named constructor param."""
    for keyword in call.keywords:
        if keyword.arg == param:
            return keyword.value
    try:
        position = params.index(param) - 1  # self occupies slot 0.
    except ValueError:
        return None
    if 0 <= position < len(call.args):
        arg = call.args[position]
        if not isinstance(arg, ast.Starred):
            return arg
    return None


def _owner_class(index: ProjectIndex,
                 info: FunctionInfo) -> Optional[ClassInfo]:
    if info.class_name is None:
        return None
    return index.classes.get(info.qualname.rsplit(".", 1)[0])


def _project_mro(index: ProjectIndex, class_qualname: str) -> List[str]:
    """BFS over project bases (self first, cycle-safe)."""
    out: List[str] = []
    queue: List[str] = [class_qualname]
    seen: Set[str] = set()
    while queue:
        current = queue.pop(0)
        if current in seen or current not in index.classes:
            continue
        seen.add(current)
        out.append(current)
        queue.extend(index.classes[current].bases)
    return out


def _walk_direct(node: ast.AST,
                 stack: List[ast.AST]) -> Iterator[
                     Tuple[ast.AST, List[ast.AST]]]:
    """(descendant, ancestors) pairs; nested defs are not entered."""
    for child in ast.iter_child_nodes(node):
        yield child, stack
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef, ast.Lambda)):
            continue
        yield from _walk_direct(child, stack + [child])


def discover_thread_roots(index: ProjectIndex) -> Dict[str, ThreadRoot]:
    """Structural thread-root discovery over the whole project.

    * ``threading.Thread(target=f)`` — ``f`` runs on a new thread; a
      construction site inside a loop spawns many (``multi``).
    * ``executor.submit(f, ...)`` — pool workers run ``f`` on many
      threads concurrently (always ``multi``).
    * public methods of ``Middleware`` classes — external callers
      enter here; a *pair* of distinct entries is what makes a shared
      mutation racy, so these are not ``multi`` on their own.
    """
    roots: Dict[str, ThreadRoot] = {}

    def note(qualname: Optional[str], kind: str, via: str,
             multi: bool) -> None:
        if qualname is None or qualname not in index.functions:
            return
        existing = roots.get(qualname)
        if existing is None:
            roots[qualname] = ThreadRoot(qualname, kind, via, multi)
        elif multi and not existing.multi:
            roots[qualname] = ThreadRoot(
                qualname, existing.kind, existing.via, True
            )

    for info in index.functions.values():
        owner = _owner_class(index, info)
        module = index.modules.get(info.module)
        for node, stack in _walk_direct(info.node, []):
            if not isinstance(node, ast.Call):
                continue
            in_loop = any(
                isinstance(a, (ast.For, ast.While)) for a in stack
            )
            name = _terminal_name(node)
            if name == "Thread":
                target = _thread_target(node)
                note(
                    _resolve_callable(index, info, owner, module,
                                      target),
                    "thread-target", info.qualname, in_loop,
                )
            elif name == "submit" and isinstance(
                node.func, ast.Attribute
            ) and node.args:
                note(
                    _resolve_callable(index, info, owner, module,
                                      node.args[0]),
                    "executor-submit", info.qualname, True,
                )

    for cls_info in index.classes.values():
        if not cls_info.name.endswith("Middleware"):
            continue
        for method_name, qualname in cls_info.methods.items():
            if method_name.startswith("_"):
                continue
            note(qualname, "public-entry", cls_info.qualname, False)
    return roots


def _thread_target(call: ast.Call) -> Optional[ast.AST]:
    for keyword in call.keywords:
        if keyword.arg == "target":
            return keyword.value
    if len(call.args) >= 2:  # Thread(group, target, ...)
        return call.args[1]
    return None


def _resolve_callable(index: ProjectIndex, info: FunctionInfo,
                      owner: Optional[ClassInfo],
                      module: Optional[object],
                      expr: Optional[ast.AST]) -> Optional[str]:
    """A function reference (not a call) to a project qualname."""
    if expr is None:
        return None
    attr = _self_attr(expr)
    if attr is not None and owner is not None:
        return index.lookup_method(owner.qualname, attr)
    if isinstance(expr, ast.Name):
        mod = index.modules.get(info.module)
        if mod is not None:
            resolved = mod.symbols.get(expr.id)
            if resolved in index.functions:
                return resolved
        scoped = f"{info.module}.{expr.id}" if info.module else expr.id
        if scoped in index.functions:
            return scoped
    return None


@dataclass
class _CallerLink:
    """One resolved edge into a function, with its lexical context."""

    caller: str
    site: CallSite
    #: Locks lexically held around the call site in the caller.
    lexical: FrozenSet[str]
    #: True when the site sits inside a nested def/lambda — a closure
    #: executes later, under unknown locks.
    deferred: bool


class LockSetAnalysis:
    """Must/may lock sets, static edges, thread roots — one build."""

    def __init__(self, index: ProjectIndex, registry: LockRegistry,
                 roots: Dict[str, ThreadRoot]) -> None:
        self.index = index
        self.registry = registry
        self.roots = roots
        #: qualname -> must-entry state (None = ⊥).
        self.must_entry: Dict[str, MustState] = {}
        #: qualname -> union of locks possibly held on entry.
        self.may_entry: Dict[str, FrozenSet[str]] = {}
        #: qualname -> lexical acquisitions in that function.
        self.acquisitions: Dict[str, List[Acquisition]] = {}
        #: The static lock-order graph with witness chains.
        self.edges: List[StaticEdge] = []
        #: Functions with entry paths the graph cannot see, and why
        #: (fallback dispatch, escapes, dunders, decorators).  A
        #: tainted function with *no* known entry path is ⊥.
        self.taint_reasons: Dict[str, str] = {}
        self._callers: Dict[str, List[_CallerLink]] = {}
        #: (function, lock) -> introducing caller link, for chains.
        self._may_provenance: Dict[Tuple[str, str], _CallerLink] = {}
        self._reach_cache: Dict[str, Dict[str, int]] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, project: "Project") -> "LockSetAnalysis":
        index = project.index()
        registry = LockRegistry.build(index)
        roots = discover_thread_roots(index)
        analysis = cls(index, registry, roots)
        analysis._scan_functions()
        analysis._solve_must()
        analysis._solve_may()
        analysis._derive_edges()
        return analysis

    def _scan_functions(self) -> None:
        """Lexical pass: acquisitions, call-site contexts, ⊥ seeds."""
        index = self.index
        for qualname, info in index.functions.items():
            owner = _owner_class(index, info)
            held_at_call: Dict[int, FrozenSet[str]] = {}
            direct_nodes: Set[int] = set()
            acquisitions: List[Acquisition] = []
            for node, stack in _walk_direct(info.node, []):
                direct_nodes.add(id(node))
                if isinstance(node, ast.Call):
                    held_at_call[id(node)] = self._held_in_stack(
                        owner, stack
                    )
                if isinstance(node, ast.With):
                    held = self._held_in_stack(owner, stack)
                    for item in node.items:
                        attr = _self_attr(item.context_expr)
                        if attr is None or owner is None:
                            continue
                        lock = self.registry.lookup(
                            index, owner.qualname, attr
                        )
                        if lock is None:
                            continue
                        acquisitions.append(Acquisition(
                            function=qualname, node=node, lock=lock,
                            held_lexical=held,
                        ))
            self.acquisitions[qualname] = acquisitions
            for site in index.calls.get(qualname, []):
                deferred = id(site.node) not in direct_nodes
                lexical = held_at_call.get(id(site.node), frozenset())
                for target in site.targets:
                    if site.via_fallback:
                        # A dispatch guess: taint the target rather
                        # than invent a caller relationship.
                        self.taint_reasons.setdefault(
                            target, "reached via dynamic-dispatch "
                            f"fallback from {qualname}"
                        )
                        continue
                    self._callers.setdefault(target, []).append(
                        _CallerLink(qualname, site, lexical, deferred)
                    )
            self._seed_bottom(info)

    def _seed_bottom(self, info: FunctionInfo) -> None:
        """Taint functions whose callers cannot all be seen."""
        name = info.name
        if name.startswith("__") and name.endswith("__") and \
                name != "__init__":
            self.taint_reasons.setdefault(
                info.qualname, "dunder methods dispatch implicitly"
            )
        if info.node.decorator_list:
            self.taint_reasons.setdefault(
                info.qualname, "decorated defs are called through "
                "their wrapper"
            )
        # Escape analysis: the function referenced as a *value* in a
        # position other than a recognised thread-root slot.
        for qualname in _escaped_references(self.index, info):
            self.taint_reasons.setdefault(
                qualname, f"escapes as a value in {info.qualname}"
            )

    def _held_in_stack(self, owner: Optional[ClassInfo],
                       stack: List[ast.AST]) -> FrozenSet[str]:
        if owner is None:
            return frozenset()
        held: Set[str] = set()
        for ancestor in stack:
            if not isinstance(ancestor, ast.With):
                continue
            for item in ancestor.items:
                attr = _self_attr(item.context_expr)
                if attr is None:
                    continue
                lock = self.registry.lookup(
                    self.index, owner.qualname, attr
                )
                if lock is not None:
                    held.add(lock.canonical)
        return frozenset(held)

    # -- must dataflow -------------------------------------------------------

    def _solve_must(self) -> None:
        """Greatest fixpoint from ⊤ = all locks, over *known* paths.

        First a least fixpoint marks every function with at least one
        known entry path: being a thread root, having no callers at
        all (externally callable, no taint), or being called — through
        a resolved, non-deferred site — by a function that is itself
        known.  Everything else is ⊥.  Then the meet runs over known
        contributions only: a tainted function's invisible extra
        callers never pull the set down to "unlocked".
        """
        top = frozenset(
            info.canonical
            for info in self.registry.known_locks().values()
        )
        known = self._solve_known()
        state: Dict[str, MustState] = {
            qualname: (top if qualname in known else None)
            for qualname in self.index.functions
        }
        changed = True
        while changed:
            changed = False
            for qualname in known:
                new = self._must_transfer(qualname, state)
                if new != state[qualname]:
                    state[qualname] = new
                    changed = True
        self.must_entry = state

    def _solve_known(self) -> Set[str]:
        known: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for qualname in self.index.functions:
                if qualname in known:
                    continue
                links = self._callers.get(qualname, [])
                entered_outside = qualname in self.roots or (
                    not links and qualname not in self.taint_reasons
                )
                if entered_outside or any(
                    not link.deferred and link.caller in known
                    for link in links
                ):
                    known.add(qualname)
                    changed = True
        return known

    def _must_transfer(self, qualname: str,
                       state: Dict[str, MustState]) -> MustState:
        parts: List[FrozenSet[str]] = []
        links = self._callers.get(qualname, [])
        if qualname in self.roots or (
            not links and qualname not in self.taint_reasons
        ):
            # Entered from outside the graph: no project lock held.
            parts.append(frozenset())
        for link in links:
            if link.deferred:
                continue  # closure: an unknown path, not a witness.
            caller_state = state.get(link.caller)
            if caller_state is None:
                continue  # ⊥ caller: taint, never "unlocked".
            parts.append(caller_state | link.lexical)
        if not parts:
            return None
        result = parts[0]
        for part in parts[1:]:
            result = result & part
        return result

    # -- may dataflow --------------------------------------------------------

    def _solve_may(self) -> None:
        """Least fixpoint: union of caller contributions, from ∅."""
        state: Dict[str, FrozenSet[str]] = {
            qualname: frozenset() for qualname in self.index.functions
        }
        changed = True
        while changed:
            changed = False
            for qualname in self.index.functions:
                merged: Set[str] = set(state[qualname])
                for link in self._callers.get(qualname, []):
                    incoming = state.get(link.caller, frozenset())
                    contribution = incoming if link.deferred \
                        else incoming | link.lexical
                    for lock in contribution:
                        if lock not in merged:
                            merged.add(lock)
                            self._may_provenance.setdefault(
                                (qualname, lock), link
                            )
                if len(merged) != len(state[qualname]):
                    state[qualname] = frozenset(merged)
                    changed = True
        self.may_entry = state

    # -- static lock-order edges ---------------------------------------------

    def _derive_edges(self) -> None:
        seen: Set[Tuple[str, str, str]] = set()
        for qualname, acquisitions in self.acquisitions.items():
            entry = self.may_entry.get(qualname, frozenset())
            for acq in acquisitions:
                held = entry | acq.held_lexical
                for outer in sorted(held):
                    if outer == acq.lock.canonical:
                        if acq.lock.reentrant:
                            continue  # RLock re-entry: legal, no edge.
                        # Re-acquiring a held plain lock: self-deadlock.
                    key = (outer, acq.lock.canonical, qualname)
                    if key in seen:
                        continue
                    seen.add(key)
                    chain = self._held_chain(qualname, outer,
                                             acq.held_lexical)
                    self.edges.append(StaticEdge(
                        outer=outer, inner=acq.lock.canonical,
                        function=qualname, node=acq.node, chain=chain,
                    ))

    def _held_chain(self, qualname: str, lock: str,
                    held_lexical: FrozenSet[str]) -> Tuple[str, ...]:
        """Caller chain explaining how ``lock`` is held at ``qualname``."""
        if lock in held_lexical:
            return (qualname,)
        chain = [qualname]
        seen = {qualname}
        current = qualname
        while True:
            link = self._may_provenance.get((current, lock))
            if link is None or link.caller in seen:
                break
            chain.append(link.caller)
            seen.add(link.caller)
            if lock in link.lexical:
                break  # acquired lexically around this call site.
            current = link.caller
        return tuple(reversed(chain))

    # -- queries -------------------------------------------------------------

    def edge_pairs(self) -> Set[Tuple[str, str]]:
        """The static graph as bare ``(outer, inner)`` pairs."""
        return {(edge.outer, edge.inner) for edge in self.edges}

    def must_holds(self, qualname: str) -> MustState:
        """Locks provably held on entry (None = ⊥ / unknown)."""
        return self.must_entry.get(qualname, frozenset())

    def unlocked_chain(self, qualname: str,
                       lock: str) -> Tuple[str, ...]:
        """A caller chain (outermost first) that reaches ``qualname``
        without holding ``lock`` — the witness for a guarded-by or
        atomicity finding.  Falls back to ``(qualname,)`` when the
        function simply has no known callers.
        """
        chain = [qualname]
        seen = {qualname}
        current = qualname
        while True:
            links = self._callers.get(current, [])
            step = None
            for link in links:
                if link.caller in seen or link.deferred:
                    continue
                caller_state = self.must_entry.get(link.caller)
                if caller_state is None:
                    continue
                if lock not in (caller_state | link.lexical):
                    step = link
                    break
            if step is None:
                break
            chain.append(step.caller)
            seen.add(step.caller)
            current = step.caller
        return tuple(reversed(chain))

    def roots_reaching(self, qualname: str) -> List[ThreadRoot]:
        """Thread roots from which ``qualname`` is reachable."""
        out: List[ThreadRoot] = []
        for root in self.roots.values():
            reach = self._root_reach(root.qualname)
            if qualname in reach:
                out.append(root)
        return out

    def _root_reach(self, root: str) -> Dict[str, int]:
        if root not in self._reach_cache:
            self._reach_cache[root] = self.index.reachable(root)
        return self._reach_cache[root]


def _escaped_references(index: ProjectIndex,
                        info: FunctionInfo) -> Iterator[str]:
    """Project functions ``info`` passes around as values.

    A reference in a call-argument position that is not a recognised
    thread-root slot (``Thread(target=...)``, ``submit(f, ...)``), or
    assigned to an attribute/variable, means the function may be
    invoked later from an arbitrary context — its entry state is ⊥.
    Thread-root slots are exempt because roots get the stronger, more
    useful "entered with no locks" state.
    """
    owner = _owner_class(index, info)
    module = index.modules.get(info.module)

    def resolve(expr: ast.AST) -> Optional[str]:
        return _resolve_callable(index, info, owner, module, expr)

    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            exempt: Set[int] = {id(node.func)}
            name = _terminal_name(node)
            if name == "Thread":
                target = _thread_target(node)
                if target is not None:
                    exempt.add(id(target))
            elif name == "submit" and node.args:
                exempt.add(id(node.args[0]))
            for child in list(node.args) + [
                k.value for k in node.keywords
            ]:
                if id(child) in exempt:
                    continue
                found = resolve(child)
                if found is not None:
                    yield found
        elif isinstance(node, ast.Assign):
            found = resolve(node.value) if not isinstance(
                node.value, ast.Call
            ) else None
            if found is not None:
                yield found
