"""The analysis engine: collect files, run rules, apply suppressions.

The engine is deliberately small: it loads every ``.py`` file under
the requested paths into :class:`~repro.analysis.source.SourceFile`
objects, hands the whole :class:`Project` to each rule (rules decide
whether they work per-file or across files), then filters the findings
through the per-line suppression table.

Suppression policy:

* a finding on a line carrying ``# repro-lint: disable=<rule>`` is
  dropped and the suppression is marked used;
* a suppression without a `` -- justification`` tail produces an
  ``unjustified-suppression`` finding (which cannot itself be
  suppressed — the point is that every silence is auditable);
* a suppression no finding matched produces an ``unused-suppression``
  finding, so stale pragmas are cleaned up instead of rotting.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Collection, Iterable, Protocol, Sequence

from .findings import Finding
from .source import SourceFile

if TYPE_CHECKING:
    from .lockset import LockSetAnalysis
    from .project_index import ProjectIndex

#: Directory names never descended into while collecting files.
_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".venv", "venv", "node_modules"}

#: Engine-level pseudo-rules guarding the suppression mechanism itself.
UNJUSTIFIED_SUPPRESSION = "unjustified-suppression"
UNUSED_SUPPRESSION = "unused-suppression"


class Project:
    """Every source file of one analysis run, plus the project root.

    ``root`` is where cross-file rules look for ``docs/`` and
    ``README.md``; it is auto-detected by walking up from the first
    scanned path to the nearest directory containing ``pyproject.toml``
    (falling back to the scanned path itself).
    """

    def __init__(self, files: list[SourceFile], root: str) -> None:
        self.files = files
        self.root = root
        self._index: ProjectIndex | None = None
        self._lockset: LockSetAnalysis | None = None

    def index(self) -> ProjectIndex:
        """The interprocedural index, built once per project.

        Rules that set ``needs_index`` call this; the engine usually
        pre-builds it (timed separately) before running them.
        """
        if self._index is None:
            from .project_index import ProjectIndex
            self._index = ProjectIndex.build(self)
        return self._index

    def lockset(self) -> LockSetAnalysis:
        """The lock-set analysis, built once on top of the index.

        Rules that set ``needs_lockset`` call this; like the index it
        is pre-built (timed under ``lock-set``) by the engine.
        """
        if self._lockset is None:
            from .lockset import LockSetAnalysis
            self._lockset = LockSetAnalysis.build(self)
        return self._lockset

    def by_suffix(self, suffix: str) -> list[SourceFile]:
        """Scanned files whose path ends with ``suffix``."""
        normalized = suffix.replace("\\", "/")
        return [
            f for f in self.files
            if f.path.replace("\\", "/").endswith(normalized)
        ]


class RuleLike(Protocol):
    """What the engine needs from a rule (see ``rules.base.Rule``)."""

    name: str
    needs_index: bool
    needs_lockset: bool

    def check(self, project: Project) -> Iterable[Finding]: ...


@dataclass
class AnalysisReport:
    """The outcome of one engine run."""

    findings: list[Finding] = field(default_factory=list)
    #: Findings dropped by suppressions (kept for ``--show-suppressed``).
    suppressed: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    #: Files that could not be parsed (reported as findings too).
    parse_errors: int = 0
    #: Rules this run executed, in registry order.
    rules_run: list[str] = field(default_factory=list)
    #: Detected project root (SARIF URIs are relative to it).
    root: str = "."
    #: Wall seconds per rule; building the interprocedural index and
    #: the lock-set analysis are charged to the pseudo-entries
    #: ``project-index`` / ``lock-set``, not to whichever rule
    #: happened to run first.
    rule_timings: dict[str, float] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings


def _detect_root(start: str) -> str:
    """Nearest ancestor of ``start`` holding a ``pyproject.toml``."""
    probe = os.path.abspath(start)
    if os.path.isfile(probe):
        probe = os.path.dirname(probe)
    while True:
        if os.path.exists(os.path.join(probe, "pyproject.toml")):
            return probe
        parent = os.path.dirname(probe)
        if parent == probe:
            return os.path.abspath(start)
        probe = parent


def collect_paths(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in _SKIP_DIRS and not d.endswith(".egg-info")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    out.append(os.path.join(dirpath, filename))
    return sorted(set(out))


def load_project(paths: list[str], root: str | None = None) -> \
        tuple[Project, list[Finding]]:
    """Parse every file; returns the project plus parse-error findings."""
    files = []
    errors = []
    for path in collect_paths(paths):
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        try:
            files.append(SourceFile(path, text))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    column=(exc.offset or 1) - 1,
                    rule="parse-error",
                    message=f"could not parse file: {exc.msg}",
                )
            )
    detected_root = root or _detect_root(paths[0] if paths else ".")
    return Project(files, detected_root), errors


def run_rules(project: Project,
              rules: Sequence[RuleLike]) -> list[Finding]:
    """Run every rule over the project; findings come back sorted."""
    findings, _ = run_rules_timed(project, rules)
    return findings


def run_rules_timed(project: Project, rules: Sequence[RuleLike]) -> \
        tuple[list[Finding], dict[str, float]]:
    """Like :func:`run_rules`, plus wall seconds per rule.

    When any rule needs the interprocedural index it is built up
    front and timed under the ``project-index`` pseudo-entry, so
    per-rule numbers stay comparable regardless of run order.
    """
    timings: dict[str, float] = {}
    needs_lockset = any(
        getattr(rule, "needs_lockset", False) for rule in rules
    )
    if needs_lockset or any(
        getattr(rule, "needs_index", False) for rule in rules
    ):
        started = time.perf_counter()
        project.index()
        timings["project-index"] = time.perf_counter() - started
    if needs_lockset:
        started = time.perf_counter()
        project.lockset()
        timings["lock-set"] = time.perf_counter() - started
    findings: list[Finding] = []
    for rule in rules:
        started = time.perf_counter()
        findings.extend(rule.check(project))
        timings[rule.name] = time.perf_counter() - started
    return sorted(findings), timings


def apply_suppressions(
    project: Project,
    findings: list[Finding],
    active_rules: Collection[str] | None = None,
) -> AnalysisReport:
    """Split findings into reported vs suppressed; audit the pragmas.

    ``active_rules`` scopes the *unused*-suppression audit to the
    rules that actually ran: a ``--select``ed single-rule run must not
    flag every other rule's pragma as stale.  ``None`` (the default)
    audits everything — the full-suite behaviour.
    """
    report = AnalysisReport(files_scanned=len(project.files))
    by_path = {f.path: f for f in project.files}
    for finding in findings:
        source = by_path.get(finding.path)
        suppression = (
            source.suppressions.get(finding.line)
            if source is not None else None
        )
        if (
            suppression is not None
            and finding.rule in suppression.rules
            and suppression.justified
        ):
            suppression.used.add(finding.rule)
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)

    # Audit the suppression table itself.
    for source in project.files:
        for suppression in source.suppressions.values():
            if not suppression.justified:
                report.findings.append(
                    Finding(
                        path=source.path,
                        line=suppression.line,
                        column=0,
                        rule=UNJUSTIFIED_SUPPRESSION,
                        message=(
                            "suppression lacks a justification; write "
                            "'# repro-lint: disable="
                            f"{','.join(suppression.rules)} -- <why>'"
                        ),
                    )
                )
                continue
            # One finding *per unused rule*: a shared
            # ``disable=a,b`` pragma where only ``a`` still fires must
            # report ``b`` individually, and a narrowed run
            # (``--select``) must stay silent about rules it never
            # executed.
            for rule_name in suppression.rules:
                if rule_name in suppression.used:
                    continue
                if active_rules is not None and \
                        rule_name not in active_rules:
                    continue
                report.findings.append(
                    Finding(
                        path=source.path,
                        line=suppression.line,
                        column=0,
                        rule=UNUSED_SUPPRESSION,
                        message=(
                            f"suppression of '{rule_name}' never "
                            "matched a finding; remove it from the "
                            "pragma"
                        ),
                    )
                )
    report.findings.sort()
    report.suppressed.sort()
    return report


def analyze(paths: list[str], rules: Sequence[RuleLike],
            root: str | None = None) -> AnalysisReport:
    """Parse, run, suppress — the one-call entry point."""
    project, parse_errors = load_project(paths, root=root)
    findings, timings = run_rules_timed(project, rules)
    report = apply_suppressions(
        project, findings,
        active_rules={rule.name for rule in rules},
    )
    report.findings = sorted(report.findings + parse_errors)
    report.parse_errors = len(parse_errors)
    report.rules_run = [rule.name for rule in rules]
    report.rule_timings = timings
    report.root = project.root
    return report
