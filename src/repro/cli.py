"""Command-line interface: generate → fit → evaluate → predict.

Usage::

    python -m repro generate --workload census --rows 5000 --out data.csv
    python -m repro fit data.csv --out model.json --render-depth 2
    python -m repro evaluate data.csv --folds 5
    python -m repro predict model.json data.csv --out scored.csv

Data files are header-bearing CSVs of integer attribute codes with the
class label in the last (or ``--class-column``) column — the format
``generate`` emits and ``import_csv`` loads.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Any, Iterable, Sequence

from .client.decision_tree import DecisionTreeClassifier
from .client.evaluation import cross_validate, evaluate
from .client.growth import GrowthPolicy
from .client.serialize import load_tree, save_tree
from .common.errors import ReproError
from .core.config import AUX_STRATEGIES, MiddlewareConfig
from .core.middleware import Middleware
from .datagen.census import CensusConfig, census_spec, generate_census_rows
from .datagen.dataset import DatasetSpec
from .datagen.gaussians import GaussianMixture, GaussianMixtureConfig
from .datagen.loader import load_dataset
from .datagen.random_tree import RandomTreeConfig, build_random_tree
from .sqlengine.database import SQLServer


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        return int(args.handler(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Scalable classification over SQL databases (ICDE 1999 "
            "reproduction)"
        ),
    )
    commands = parser.add_subparsers(dest="command")
    parser.set_defaults(command=None)

    generate = commands.add_parser(
        "generate", help="generate a synthetic data set as CSV"
    )
    generate.add_argument(
        "--workload",
        choices=("random-tree", "gaussian", "census"),
        default="random-tree",
    )
    generate.add_argument("--rows", type=int, default=5000,
                          help="approximate row count")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output CSV path")
    generate.set_defaults(handler=_cmd_generate)

    fit = commands.add_parser(
        "fit", help="grow a decision tree over a CSV data set"
    )
    fit.add_argument("data", help="input CSV (integer codes + class)")
    fit.add_argument("--class-column", default=None,
                     help="class column name (default: last column)")
    fit.add_argument("--criterion", default="entropy",
                     choices=("entropy", "gain_ratio", "gini", "chi2"))
    fit.add_argument("--max-depth", type=int, default=None)
    fit.add_argument("--min-rows", type=int, default=2)
    fit.add_argument("--memory", type=int, default=256 * 1024,
                     help="middleware memory budget in simulated bytes")
    fit.add_argument("--no-staging", action="store_true",
                     help="disable file and memory staging")
    fit.add_argument("--file-split-threshold", type=float, default=None,
                     help="file-split trigger in [0, 1]: a file scan "
                          "whose active nodes cover at most this "
                          "fraction writes fresh per-node files "
                          "(default: 0.5)")
    fit.add_argument("--file-budget-bytes", type=int, default=None,
                     help="cap on total staged-file bytes "
                          "(default: unlimited)")
    fit.add_argument("--no-push-filters", action="store_true",
                     help="keep batch filter expressions out of server "
                          "scans (route every row in the middleware)")
    fit.add_argument("--aux-strategy", choices=AUX_STRATEGIES,
                     default=None,
                     help="server-access strategy for partial scans "
                          "(default: scan)")
    fit.add_argument("--aux-build-threshold", type=float, default=None,
                     help="relevant-row fraction in (0, 1] below which "
                          "the auxiliary strategy builds its structure "
                          "(default: 0.1)")
    fit.add_argument("--aux-free-build", action="store_true",
                     help="do not charge auxiliary-structure builds to "
                          "the simulated cost meter")
    fit.add_argument("--staging-dir", default=None,
                     help="directory for staging files (default: a "
                          "private temp directory)")
    fit.add_argument("--no-scan-kernel", action="store_true",
                     help="route rows with the reference per-row "
                          "matcher loop instead of the compiled kernel")
    fit.add_argument("--scan-chunk-rows", type=int, default=1024,
                     help="rows per scan chunk for buffered staging I/O")
    fit.add_argument("--scan-workers", type=int, default=None,
                     help="worker tasks per scan (default: "
                          "$REPRO_SCAN_WORKERS or 1 = serial)")
    fit.add_argument("--scan-pool", choices=("thread", "process"),
                     default=None,
                     help="worker pool kind for parallel scans "
                          "(default: thread)")
    fit.add_argument("--scan-parallel-min-rows", type=int, default=None,
                     help="scans under this many source rows stay "
                          "serial (default: 2048)")
    fit.add_argument("--scan-prefetch-partitions", type=int, default=None,
                     help="SERVER-cursor partitions a producer thread "
                          "pulls ahead of the workers (default: 2; "
                          "0 = inline pulls)")
    fit.add_argument("--no-scan-pool-reuse", action="store_true",
                     help="rebuild the worker pool for every parallel "
                          "scan instead of reusing the session pool")
    fit.add_argument("--no-scan-split-writers", action="store_true",
                     help="funnel split-file staging output through one "
                          "writer thread instead of one per file")
    fit.add_argument("--no-scan-columnar", action="store_true",
                     help="count parallel scans over row tuples instead "
                          "of columnar partitions")
    fit.add_argument("--no-scan-shared-memory", action="store_true",
                     help="pickle columnar partitions to process "
                          "workers instead of shipping shared-memory "
                          "segments")
    fit.add_argument("--no-scan-adaptive-partitions", action="store_true",
                     help="pin the static partition-sizing policy "
                          "instead of adapting from worker timings")
    fit.add_argument("--no-scan-columnar-cache", action="store_true",
                     help="re-encode every parallel scan instead of "
                          "reusing table-version-keyed columnar "
                          "encodings")
    fit.add_argument("--scan-cache-bytes", type=int, default=None,
                     help="byte budget for resident cached columnar "
                          "encodings (default: 128 MiB; 0 disables "
                          "caching)")
    fit.add_argument("--no-scan-persistent-shm", action="store_true",
                     help="re-ship cached encodings to process workers "
                          "every scan instead of keeping one "
                          "shared-memory segment alive per entry")
    fit.add_argument("--no-scan-use-planner", action="store_true",
                     help="strip the index candidate from the auto "
                          "strategy's access-path planner (the blind "
                          "baseline; fixed strategies ignore this)")
    fit.add_argument("--out", default=None, help="write the model as JSON")
    fit.add_argument("--render-depth", type=int, default=None,
                     help="print the tree down to this depth")
    fit.add_argument("--trace", action="store_true",
                     help="print the per-scan execution trace")
    fit.set_defaults(handler=_cmd_fit)

    evaluate_cmd = commands.add_parser(
        "evaluate", help="k-fold cross-validation on a CSV data set"
    )
    evaluate_cmd.add_argument("data")
    evaluate_cmd.add_argument("--class-column", default=None)
    evaluate_cmd.add_argument("--criterion", default="entropy",
                              choices=("entropy", "gain_ratio", "gini",
                                       "chi2"))
    evaluate_cmd.add_argument("--folds", type=int, default=5)
    evaluate_cmd.add_argument("--max-depth", type=int, default=None)
    evaluate_cmd.add_argument("--seed", type=int, default=0)
    evaluate_cmd.set_defaults(handler=_cmd_evaluate)

    predict = commands.add_parser(
        "predict", help="score a CSV data set with a saved model"
    )
    predict.add_argument("model", help="model JSON from `fit --out`")
    predict.add_argument("data", help="CSV to score")
    predict.add_argument("--out", default=None,
                         help="write predictions as CSV")
    predict.set_defaults(handler=_cmd_predict)

    return parser


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------


def _cmd_generate(args: argparse.Namespace) -> int:
    rows: Iterable[tuple[int, ...]]
    if args.workload == "census":
        spec = census_spec()
        rows = generate_census_rows(
            CensusConfig(n_rows=args.rows, seed=args.seed)
        )
    elif args.workload == "gaussian":
        per_class = max(1, args.rows // 5)
        mixture = GaussianMixture(
            GaussianMixtureConfig(
                n_dimensions=10,
                n_classes=5,
                samples_per_class=per_class,
                seed=args.seed,
            )
        )
        spec = mixture.spec()
        rows = mixture.generate_rows()
    else:
        leaves = max(2, args.rows // 50)
        generating = build_random_tree(
            RandomTreeConfig(
                n_leaves=leaves,
                cases_per_leaf=max(1, args.rows // leaves),
                seed=args.seed,
            )
        )
        spec = generating.spec
        rows = generating.generate_rows()

    count = _write_csv(args.out, spec, rows)
    print(f"wrote {count} rows x {spec.n_attributes} attributes "
          f"to {args.out}")
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    spec, rows = _read_csv_dataset(args.data, args.class_column)
    server = SQLServer()
    load_dataset(server, "data", spec, rows)  # repro-lint: disable=unmetered-row-access -- dataset load is the unmetered setup phase: bulk_load bypasses the meter by design, only the fit/predict workload is billed

    scan_options: dict[str, Any] = {
        "scan_kernel": not args.no_scan_kernel,
        "scan_chunk_rows": args.scan_chunk_rows,
    }
    # Only forward parallel-scan flags the user actually set, so the
    # config's own defaults (including $REPRO_SCAN_WORKERS) apply.
    if args.scan_workers is not None:
        scan_options["scan_workers"] = args.scan_workers
    if args.scan_pool is not None:
        scan_options["scan_pool"] = args.scan_pool
    if args.scan_parallel_min_rows is not None:
        scan_options["scan_parallel_min_rows"] = args.scan_parallel_min_rows
    if args.scan_prefetch_partitions is not None:
        scan_options["scan_prefetch_partitions"] = (
            args.scan_prefetch_partitions
        )
    if args.no_scan_pool_reuse:
        scan_options["scan_pool_reuse"] = False
    if args.no_scan_split_writers:
        scan_options["scan_split_writers"] = False
    if args.no_scan_columnar:
        scan_options["scan_columnar"] = False
    if args.no_scan_shared_memory:
        scan_options["scan_shared_memory"] = False
    if args.no_scan_adaptive_partitions:
        scan_options["scan_adaptive_partitions"] = False
    if args.no_scan_columnar_cache:
        scan_options["scan_columnar_cache"] = False
    if args.scan_cache_bytes is not None:
        scan_options["scan_cache_bytes"] = args.scan_cache_bytes
    if args.no_scan_persistent_shm:
        scan_options["scan_persistent_shm"] = False
    if args.no_scan_use_planner:
        scan_options["scan_use_planner"] = False
    if args.file_split_threshold is not None:
        scan_options["file_split_threshold"] = args.file_split_threshold
    if args.file_budget_bytes is not None:
        scan_options["file_budget_bytes"] = args.file_budget_bytes
    if args.no_push_filters:
        scan_options["push_filters"] = False
    if args.aux_strategy is not None:
        scan_options["aux_strategy"] = args.aux_strategy
    if args.aux_build_threshold is not None:
        scan_options["aux_build_threshold"] = args.aux_build_threshold
    if args.aux_free_build:
        scan_options["aux_free_build"] = True
    if args.staging_dir is not None:
        scan_options["staging_dir"] = args.staging_dir
    if args.no_staging:
        config = MiddlewareConfig.no_staging(args.memory, **scan_options)
    else:
        config = MiddlewareConfig(memory_bytes=args.memory, **scan_options)
    classifier = DecisionTreeClassifier(
        criterion=args.criterion,
        max_depth=args.max_depth,
        min_rows=args.min_rows,
    )
    with Middleware(server, "data", spec, config) as middleware:
        classifier.fit(middleware)
        report = middleware.report()
        stats = middleware.stats

    tree = classifier.tree
    print(f"fitted tree: {tree.n_nodes} nodes, {tree.n_leaves} leaves, "
          f"depth {tree.depth}")
    print(f"training accuracy: {classifier.accuracy(rows):.4f}")
    print(f"simulated cost: {server.meter.total:,.1f} "
          f"({stats.total_scans} scans)")
    if args.trace:
        print(report)
    if args.render_depth is not None:
        print(tree.render(max_depth=args.render_depth))
    if args.out:
        save_tree(tree, args.out)
        print(f"model saved to {args.out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    spec, rows = _read_csv_dataset(args.data, args.class_column)
    policy = GrowthPolicy(criterion=args.criterion,
                          max_depth=args.max_depth)
    scores = cross_validate(rows, spec, policy=policy, k=args.folds,
                            seed=args.seed)
    mean = sum(scores) / len(scores)
    rendered = ", ".join(f"{s:.3f}" for s in scores)
    print(f"{args.folds}-fold accuracies: {rendered}")
    print(f"mean accuracy: {mean:.4f}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    tree = load_tree(args.model)
    spec, rows = _read_csv_dataset(
        args.data, None, expected_spec=tree.spec
    )
    predictions = tree.predict(rows)

    if args.out:
        with open(args.out, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                spec.attribute_names + [spec.class_name, "predicted"]
            )
            for row, label in zip(rows, predictions):
                writer.writerow(list(row) + [label])
        print(f"wrote {len(rows)} predictions to {args.out}")

    report = evaluate(tree, rows, spec.n_classes)
    print(report)
    return 0


# ---------------------------------------------------------------------------
# CSV plumbing
# ---------------------------------------------------------------------------


def _write_csv(path: str, spec: DatasetSpec,
               rows: Iterable[tuple[int, ...]]) -> int:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(spec.attribute_names + [spec.class_name])
        count = 0
        for row in rows:
            writer.writerow(row)
            count += 1
    return count


def _read_csv_dataset(
    path: str,
    class_column: str | None,
    expected_spec: DatasetSpec | None = None,
) -> tuple[DatasetSpec, list[tuple[int, ...]]]:
    """Load a codes CSV into ``(spec, rows)`` with the class last."""
    from .common.errors import ClientError

    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = [name.strip() for name in next(reader)]
        except StopIteration:
            raise ClientError(f"{path!r} is empty") from None
        try:
            raw = [[int(v) for v in row] for row in reader if row]
        except ValueError:
            raise ClientError(
                f"{path!r} must contain integer attribute codes; "
                "discretise numeric data first"
            ) from None

    if class_column is None:
        class_column = header[-1]
    if class_column not in header:
        raise ClientError(f"no column named {class_column!r} in {path!r}")
    class_position = header.index(class_column)
    attribute_names = [n for n in header if n != class_column]

    rows: list[tuple[int, ...]] = []
    for values in raw:
        attributes = [
            v for i, v in enumerate(values) if i != class_position
        ]
        rows.append(tuple(attributes) + (values[class_position],))

    if expected_spec is not None:
        if expected_spec.attribute_names != attribute_names:
            raise ClientError(
                "CSV columns do not match the model's attributes"
            )
        return expected_spec, rows

    if not rows:
        raise ClientError(f"{path!r} has no data rows")
    cards: list[int] = []
    for i in range(len(attribute_names)):
        cards.append(max(2, max(row[i] for row in rows) + 1))
    n_classes = max(2, max(row[-1] for row in rows) + 1)
    spec = DatasetSpec(cards, n_classes, attribute_names=attribute_names,
                       class_name=class_column)
    for row in rows:
        spec.validate_row(row)
    return spec, rows
